//! Metrics built on the [`RouteObserver`] event stream: monotonic
//! counters plus fixed-bucket log-scale histograms, with no external
//! dependencies.
//!
//! [`MetricsRecorder`] is the standard production observer: attach one
//! to any [`DetailedRouter`](crate::DetailedRouter) via
//! [`route_observed`](crate::DetailedRouter::route_observed) (or let the
//! batch engine attach one per instance) and read back a
//! [`RouterStats`] reconstructed from events, net-level completion
//! counters, and an expansion histogram describing how search effort is
//! distributed — the long tail the aggregate mean hides.
//!
//! # Examples
//!
//! ```
//! use route_model::{Histogram, MetricsRecorder, NetId, RouteObserver, SearchKind, SearchProbe};
//!
//! let mut rec = MetricsRecorder::new();
//! rec.on_net_scheduled(NetId(0));
//! rec.on_search_done(
//!     NetId(0),
//!     SearchKind::Hard,
//!     SearchProbe { expanded: 40, relaxed: 90, heap_peak: 12, found: true },
//! );
//! rec.on_net_committed(NetId(0));
//! assert_eq!(rec.router().hard_routes, 1);
//! assert_eq!(rec.nets_committed(), 1);
//! assert_eq!(rec.expansion().count(), 1);
//! ```

use std::fmt;

use crate::observe::{RouteObserver, SearchKind, SearchProbe};
use crate::{NetId, RouterStats};

/// Number of histogram buckets: bucket 0 holds the value `0`, bucket
/// `i >= 1` holds `[2^(i-1), 2^i)`, and the last bucket absorbs
/// everything above `2^30`.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// A fixed-size histogram with logarithmic (powers-of-two) buckets.
///
/// Log-scale buckets trade per-value precision for a constant, merge-
/// friendly footprint: recording is one branch and one increment, and
/// two histograms merge by adding buckets — exactly what the batch
/// engine needs to aggregate per-instance recorders without allocation
/// or locks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { counts: [0; HISTOGRAM_BUCKETS], count: 0, sum: 0, max: 0 }
    }
}

/// Bucket index of `value`: 0 for `0`, else `1 + floor(log2(value))`,
/// saturating at the last bucket.
fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        ((64 - value.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// Inclusive upper bound of bucket `i`.
fn bucket_bound(i: usize) -> u64 {
    match i {
        0 => 0,
        _ if i >= HISTOGRAM_BUCKETS - 1 => u64::MAX,
        _ => (1u64 << i) - 1,
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.counts[bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Adds every sample of `other` into this histogram.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of the samples, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing the `q`-quantile (`0..=1`),
    /// or 0 when empty. Log-scale buckets make this an upper estimate
    /// within a factor of two — plenty for spotting tail blow-ups.
    pub fn quantile_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank.max(1) {
                return bucket_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// Non-empty buckets as `(inclusive upper bound, sample count)`,
    /// ascending.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts.iter().enumerate().filter(|&(_, &c)| c > 0).map(|(i, &c)| (bucket_bound(i), c))
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n {}, mean {:.1}, p50<= {}, p99<= {}, max {}",
            self.count,
            self.mean(),
            self.quantile_bound(0.5),
            self.quantile_bound(0.99),
            self.max
        )
    }
}

/// A [`RouteObserver`] that folds the event stream into monotonic
/// counters and histograms.
///
/// The counter block is a [`RouterStats`] reconstructed from events, so
/// engine aggregates and CLI tables speak the same vocabulary as the
/// router's own accounting. On top of it the recorder tracks net-level
/// terminal counts, penalty escalation depth, and a histogram of
/// per-search expanded nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MetricsRecorder {
    router: RouterStats,
    nets_scheduled: u64,
    nets_committed: u64,
    nets_failed: u64,
    escalations: u64,
    max_penalty: u64,
    expansion: Histogram,
}

impl MetricsRecorder {
    /// A recorder with all counters at zero.
    pub fn new() -> Self {
        MetricsRecorder::default()
    }

    /// Work counters reconstructed from the event stream.
    ///
    /// `hard_routes` here counts *every* successful hard search
    /// (including weak-repair re-routes), and `reroutes`/`weak_rollbacks`
    /// stay zero — those distinctions are internal to the router and not
    /// part of the event vocabulary.
    pub fn router(&self) -> &RouterStats {
        &self.router
    }

    /// Queue events observed ([`on_net_scheduled`](RouteObserver::on_net_scheduled)).
    pub fn nets_scheduled(&self) -> u64 {
        self.nets_scheduled
    }

    /// Terminal commit events observed.
    pub fn nets_committed(&self) -> u64 {
        self.nets_committed
    }

    /// Terminal failure events observed.
    pub fn nets_failed(&self) -> u64 {
        self.nets_failed
    }

    /// Penalty escalation events observed.
    pub fn escalations(&self) -> u64 {
        self.escalations
    }

    /// Highest per-slot crossing penalty any net reached.
    pub fn max_penalty(&self) -> u64 {
        self.max_penalty
    }

    /// Histogram of expanded nodes per search.
    pub fn expansion(&self) -> &Histogram {
        &self.expansion
    }

    /// Accumulates another recorder — the batch-engine aggregation
    /// primitive.
    pub fn merge(&mut self, other: &MetricsRecorder) {
        self.router.absorb(&other.router);
        self.nets_scheduled += other.nets_scheduled;
        self.nets_committed += other.nets_committed;
        self.nets_failed += other.nets_failed;
        self.escalations += other.escalations;
        self.max_penalty = self.max_penalty.max(other.max_penalty);
        self.expansion.merge(&other.expansion);
    }

    /// A human-readable metrics table (one `key  value` pair per line).
    pub fn table(&self) -> String {
        let r = &self.router;
        let mut out = String::new();
        let mut row = |k: &str, v: String| {
            out.push_str(&format!("  {k:<22} {v}\n"));
        };
        row("nets scheduled", self.nets_scheduled.to_string());
        row("nets committed", self.nets_committed.to_string());
        row("nets failed", self.nets_failed.to_string());
        row("hard searches won", r.hard_routes.to_string());
        row("soft searches won", r.soft_routes.to_string());
        row("weak modifications", r.weak_pushes.to_string());
        row("strong rip-ups", r.rips.to_string());
        row("penalty escalations", self.escalations.to_string());
        row("max penalty reached", self.max_penalty.to_string());
        row("nodes expanded", r.expanded.to_string());
        row("expansion/search", format!("{}", self.expansion));
        out
    }
}

impl RouteObserver for MetricsRecorder {
    fn on_net_scheduled(&mut self, _net: NetId) {
        self.nets_scheduled += 1;
        self.router.events += 1;
    }

    fn on_search_done(&mut self, _net: NetId, kind: SearchKind, probe: SearchProbe) {
        self.router.expanded += probe.expanded;
        self.expansion.record(probe.expanded);
        if probe.found {
            match kind {
                SearchKind::Hard => self.router.hard_routes += 1,
                SearchKind::Soft => self.router.soft_routes += 1,
            }
        }
    }

    fn on_weak_modification(&mut self, _net: NetId, _victim: NetId) {
        self.router.weak_pushes += 1;
    }

    fn on_strong_ripup(&mut self, _net: NetId, _victim: NetId, _rip_count: u32) {
        self.router.rips += 1;
    }

    fn on_penalty_escalation(&mut self, _victim: NetId, penalty: u64) {
        self.escalations += 1;
        self.max_penalty = self.max_penalty.max(penalty);
    }

    fn on_net_committed(&mut self, _net: NetId) {
        self.nets_committed += 1;
    }

    fn on_net_failed(&mut self, _net: NetId) {
        self.nets_failed += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_bound(0), 0);
        assert_eq!(bucket_bound(1), 1);
        assert_eq!(bucket_bound(2), 3);
        assert_eq!(bucket_bound(HISTOGRAM_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn histogram_records_and_merges() {
        let mut a = Histogram::new();
        for v in [0, 1, 5, 5, 100] {
            a.record(v);
        }
        assert_eq!(a.count(), 5);
        assert_eq!(a.sum(), 111);
        assert_eq!(a.max(), 100);
        let mut b = Histogram::new();
        b.record(1000);
        a.merge(&b);
        assert_eq!(a.count(), 6);
        assert_eq!(a.max(), 1000);
        let buckets: Vec<(u64, u64)> = a.buckets().collect();
        assert!(buckets.iter().any(|&(bound, c)| bound == 0 && c == 1));
        assert_eq!(buckets.iter().map(|&(_, c)| c).sum::<u64>(), 6);
    }

    #[test]
    fn quantiles_bound_the_distribution() {
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert!(h.quantile_bound(0.5) >= 50);
        assert!(h.quantile_bound(0.5) <= 100);
        assert_eq!(h.quantile_bound(1.0), 100);
        assert_eq!(Histogram::new().quantile_bound(0.5), 0);
    }

    #[test]
    fn recorder_folds_events_into_counters() {
        let mut rec = MetricsRecorder::new();
        rec.on_net_scheduled(NetId(0));
        rec.on_search_done(
            NetId(0),
            SearchKind::Hard,
            SearchProbe { expanded: 10, relaxed: 20, heap_peak: 8, found: false },
        );
        rec.on_search_done(
            NetId(0),
            SearchKind::Soft,
            SearchProbe { expanded: 30, relaxed: 70, heap_peak: 16, found: true },
        );
        rec.on_weak_modification(NetId(0), NetId(1));
        rec.on_strong_ripup(NetId(0), NetId(2), 1);
        rec.on_penalty_escalation(NetId(2), 16);
        rec.on_net_committed(NetId(0));
        rec.on_net_failed(NetId(2));

        assert_eq!(rec.router().hard_routes, 0, "failed hard search is not a win");
        assert_eq!(rec.router().soft_routes, 1);
        assert_eq!(rec.router().weak_pushes, 1);
        assert_eq!(rec.router().rips, 1);
        assert_eq!(rec.router().expanded, 40);
        assert_eq!(rec.escalations(), 1);
        assert_eq!(rec.max_penalty(), 16);
        assert_eq!(rec.nets_committed(), 1);
        assert_eq!(rec.nets_failed(), 1);
        assert_eq!(rec.expansion().count(), 2);

        let mut total = MetricsRecorder::new();
        total.merge(&rec);
        total.merge(&rec);
        assert_eq!(total.router().expanded, 80);
        assert_eq!(total.nets_scheduled(), 2);
        assert_eq!(total.max_penalty(), 16);

        let table = rec.table();
        assert!(table.contains("strong rip-ups"));
        assert!(table.contains("weak modifications"));
    }
}
