//! Routing problem model shared by every router in the workspace.
//!
//! The model follows the general detailed-routing formulation: a routing
//! problem is an occupancy **grid** of `width x height` cells with two
//! metal layers, an optional rectilinear **region** restricting the usable
//! area, arbitrary **obstacles**, and a list of **nets**, each with one or
//! more **pins** placed on the boundary or anywhere inside the region.
//!
//! Routers consume a [`Problem`] and produce a [`RouteDb`] — a live
//! occupancy grid plus the per-net wiring ([`Trace`]s) that has been
//! committed so far. The database supports incremental edits (commit a
//! path, rip up a trace), which is exactly what a rip-up/reroute router
//! needs, and what "partially routed areas" in the problem statement mean:
//! a `RouteDb` with some nets pre-wired is itself a valid router input.
//!
//! # Examples
//!
//! ```
//! use route_model::{ProblemBuilder, PinSide, RouteDb};
//!
//! let mut b = ProblemBuilder::switchbox(6, 4);
//! b.net("clk").pin_side(PinSide::Left, 1).pin_side(PinSide::Right, 2);
//! let problem = b.build()?;
//! let db = RouteDb::new(&problem);
//! assert_eq!(db.grid().width(), 6);
//! # Ok::<(), route_model::ProblemError>(())
//! ```

#![warn(missing_docs)]

mod api;
mod grid;
mod metrics;
mod net;
mod observe;
mod problem;
mod render;
mod route;
mod spatial;
mod stats;
mod svg;

pub use api::{DetailedRouter, RouteError, RouteResult, Routing};
pub use grid::{Cell, Grid, OccupancyView, Occupant};
pub use metrics::{Histogram, MetricsRecorder, HISTOGRAM_BUCKETS};
pub use net::{Net, NetId, Pin, PinSide};
pub use observe::{EventLog, NopObserver, RouteEvent, RouteObserver, SearchKind, SearchProbe};
pub use problem::{NetBuilder, Problem, ProblemBuilder, ProblemError};
pub use render::render_layers;
pub use route::{RouteDb, Step, Trace, TraceError, TraceId};
pub use spatial::SlotIndex;
pub use stats::{RouteStats, RouterStats};
pub use svg::render_svg;
