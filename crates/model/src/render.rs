use std::fmt::Write as _;

use route_geom::{Layer, Point};

use crate::{Occupant, RouteDb};

/// Renders the routing database as side-by-side ASCII panels, one per
/// layer, with row 0 at the bottom.
///
/// Cell legend: `.` free, `#` blocked, `a`–`z`/`A`–`Z` net wiring (by net
/// index, wrapping), `*` a via of that net at that cell.
///
/// Intended for examples, debugging and golden tests — not a stable
/// serialization format.
///
/// # Examples
///
/// ```
/// use route_model::{render_layers, ProblemBuilder, PinSide, RouteDb};
///
/// let mut b = ProblemBuilder::switchbox(3, 2);
/// b.net("a").pin_side(PinSide::Left, 0).pin_side(PinSide::Right, 0);
/// let problem = b.build()?;
/// let art = render_layers(&RouteDb::new(&problem));
/// assert!(art.contains("M1"));
/// # Ok::<(), route_model::ProblemError>(())
/// ```
pub fn render_layers(db: &RouteDb) -> String {
    let grid = db.grid();
    let (w, h) = (grid.width() as i32, grid.height() as i32);
    let glyph = |occ: Occupant, via: bool| -> char {
        match occ {
            Occupant::Free => '.',
            Occupant::Blocked => '#',
            Occupant::Net(n) => {
                if via {
                    '*'
                } else {
                    let letters = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ";
                    letters[n.index() % letters.len()] as char
                }
            }
        }
    };
    // Only layers with at least one usable cell get a panel; a fully
    // blocked layer (M3 in two-layer problems) would be all '#'.
    let layers: Vec<Layer> = Layer::ALL
        .into_iter()
        .filter(|&l| grid.points().any(|p| grid.occupant(p, l) != Occupant::Blocked))
        .collect();
    let layers = if layers.is_empty() { vec![Layer::M1] } else { layers };

    let mut out = String::new();
    let pad = |s: &str| format!("{s:<width$}", width = w as usize);
    let header: Vec<String> = layers.iter().map(|l| pad(&l.to_string())).collect();
    let _ = writeln!(out, "{}", header.join("    ").trim_end());
    for y in (0..h).rev() {
        for (i, &layer) in layers.iter().enumerate() {
            for x in 0..w {
                let p = Point::new(x, y);
                let via = grid.has_via(p);
                out.push(glyph(grid.occupant(p, layer), via));
            }
            if i + 1 < layers.len() {
                out.push_str("    ");
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PinSide, ProblemBuilder, Step, Trace};
    use route_geom::Layer;

    #[test]
    fn render_shows_nets_blocked_and_vias() {
        let mut b = ProblemBuilder::switchbox(3, 3);
        b.obstacle(Point::new(2, 2));
        b.net("a").pin_side(PinSide::Left, 0).pin_side(PinSide::Top, 0);
        let p = b.build().unwrap();
        let net = p.nets()[0].id;
        let mut db = RouteDb::new(&p);
        let t = Trace::from_steps(vec![
            Step::new(Point::new(0, 0), Layer::M1),
            Step::new(Point::new(0, 0), Layer::M2),
            Step::new(Point::new(0, 1), Layer::M2),
            Step::new(Point::new(0, 2), Layer::M2),
        ])
        .unwrap();
        db.commit(net, t).unwrap();
        let art = render_layers(&db);
        assert!(art.contains('#'), "obstacle rendered:\n{art}");
        assert!(art.contains('*'), "via rendered:\n{art}");
        assert!(art.contains('a'), "net rendered:\n{art}");
        // 3 rows + header
        assert_eq!(art.lines().count(), 4);
    }
}
