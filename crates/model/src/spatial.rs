//! Uniform-grid spatial index over routing slots.
//!
//! [`SlotIndex`] buckets `(Point, Layer)` slots into fixed-size square
//! bins so point and 4-neighborhood queries touch one small `Vec`
//! instead of hashing or scanning every committed segment. It is the
//! segment-query backbone for weak-modification candidate search in the
//! rip-up router and for the L001–L008 lint registry.
//!
//! Entries within a bin stay in insertion order, so a caller that
//! inserts in a deterministic order gets deterministic query results —
//! the property the routers rely on for bit-identical outcomes.

use route_geom::{Layer, Point};

use crate::Step;

/// Side length of one square bin, in grid cells. Eight keeps a bin's
/// entry list within a cache line or two on realistic densities while
/// still pruning almost all of the grid per query.
const BIN: u32 = 8;

/// A uniform-grid spatial index mapping occupied slots to payloads.
///
/// # Examples
///
/// ```
/// use route_geom::{Layer, Point};
/// use route_model::{SlotIndex, Step};
///
/// let mut idx: SlotIndex<u32> = SlotIndex::new(16, 16);
/// idx.insert(Step::new(Point::new(3, 4), Layer::M1), 7);
/// idx.insert(Step::new(Point::new(3, 4), Layer::M2), 9);
/// let hits: Vec<u32> = idx.at(Point::new(3, 4), Layer::M1).copied().collect();
/// assert_eq!(hits, vec![7]);
/// assert_eq!(idx.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct SlotIndex<T> {
    width: u32,
    height: u32,
    bins_x: u32,
    bins: Vec<Vec<(Step, T)>>,
    len: usize,
}

impl<T> SlotIndex<T> {
    /// Creates an empty index covering a `width x height` grid.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: u32, height: u32) -> Self {
        assert!(width > 0 && height > 0, "index dimensions must be non-zero");
        let bins_x = width.div_ceil(BIN);
        let bins_y = height.div_ceil(BIN);
        SlotIndex {
            width,
            height,
            bins_x,
            bins: (0..bins_x as usize * bins_y as usize).map(|_| Vec::new()).collect(),
            len: 0,
        }
    }

    /// Number of entries inserted.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the index holds no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Removes every entry, keeping bin capacity for reuse.
    pub fn clear(&mut self) {
        for bin in &mut self.bins {
            bin.clear();
        }
        self.len = 0;
    }

    #[inline]
    fn bin_of(&self, p: Point) -> Option<usize> {
        if p.x < 0 || p.y < 0 || p.x as u32 >= self.width || p.y as u32 >= self.height {
            return None;
        }
        Some((p.y as u32 / BIN * self.bins_x + p.x as u32 / BIN) as usize)
    }

    /// Inserts `payload` at `slot`. Out-of-bounds slots are ignored.
    pub fn insert(&mut self, slot: Step, payload: T) {
        if let Some(bin) = self.bin_of(slot.at) {
            self.bins[bin].push((slot, payload));
            self.len += 1;
        }
    }

    /// All payloads stored exactly at `(p, layer)`, in insertion order.
    pub fn at(&self, p: Point, layer: Layer) -> impl Iterator<Item = &T> {
        let bin = self.bin_of(p).map(|b| self.bins[b].as_slice()).unwrap_or(&[]);
        bin.iter().filter(move |(s, _)| s.at == p && s.layer == layer).map(|(_, t)| t)
    }

    /// All `(slot, payload)` entries on the four Manhattan neighbors of
    /// `p` on `layer`, in [`route_geom::Dir::ALL`] order and insertion
    /// order within each neighbor.
    pub fn neighbors4(&self, p: Point, layer: Layer) -> impl Iterator<Item = (Step, &T)> {
        p.neighbors().into_iter().flat_map(move |n| {
            let bin = self.bin_of(n).map(|b| self.bins[b].as_slice()).unwrap_or(&[]);
            bin.iter().filter(move |(s, _)| s.at == n && s.layer == layer).map(|(s, t)| (*s, t))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(x: i32, y: i32, layer: Layer) -> Step {
        Step::new(Point::new(x, y), layer)
    }

    #[test]
    fn point_queries_filter_by_layer() {
        let mut idx = SlotIndex::new(20, 20);
        idx.insert(s(9, 9, Layer::M1), 'a');
        idx.insert(s(9, 9, Layer::M2), 'b');
        idx.insert(s(10, 9, Layer::M1), 'c');
        assert_eq!(idx.at(Point::new(9, 9), Layer::M1).collect::<Vec<_>>(), vec![&'a']);
        assert_eq!(idx.at(Point::new(9, 9), Layer::M3).count(), 0);
        assert_eq!(idx.len(), 3);
    }

    #[test]
    fn insertion_order_is_preserved_per_slot() {
        let mut idx = SlotIndex::new(8, 8);
        for v in 0..5 {
            idx.insert(s(2, 3, Layer::M2), v);
        }
        assert_eq!(
            idx.at(Point::new(2, 3), Layer::M2).copied().collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4]
        );
    }

    #[test]
    fn neighbors_cross_bin_boundaries() {
        // (7,7) and (8,7) are in different 8x8 bins.
        let mut idx = SlotIndex::new(16, 16);
        idx.insert(s(8, 7, Layer::M1), 'e');
        idx.insert(s(7, 8, Layer::M1), 'n');
        idx.insert(s(7, 7, Layer::M2), 'x'); // wrong layer
        let hits: Vec<(Step, char)> =
            idx.neighbors4(Point::new(7, 7), Layer::M1).map(|(s, c)| (s, *c)).collect();
        assert_eq!(hits, vec![(s(7, 8, Layer::M1), 'n'), (s(8, 7, Layer::M1), 'e')]);
    }

    #[test]
    fn out_of_bounds_is_ignored() {
        let mut idx = SlotIndex::new(4, 4);
        idx.insert(s(-1, 0, Layer::M1), 0);
        idx.insert(s(0, 4, Layer::M1), 0);
        assert!(idx.is_empty());
        assert_eq!(idx.at(Point::new(-1, 0), Layer::M1).count(), 0);
        assert_eq!(idx.neighbors4(Point::new(0, 0), Layer::M1).count(), 0);
        idx.insert(s(3, 3, Layer::M1), 1);
        assert_eq!(idx.len(), 1);
        idx.clear();
        assert!(idx.is_empty());
    }
}
