use std::fmt;

/// Aggregate wiring statistics of a [`RouteDb`](crate::RouteDb).
///
/// Produced by [`RouteDb::stats`](crate::RouteDb::stats).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RouteStats {
    /// Occupied `(cell, layer)` slots beyond the pins — total wire cells.
    pub wirelength: u64,
    /// Number of vias (M1–M2 connections).
    pub vias: u64,
    /// Number of live committed traces.
    pub traces: u64,
}

impl RouteStats {
    /// Common scalar quality figure: wirelength plus a via penalty.
    ///
    /// Vias are conventionally weighted heavier than wire cells; `weight`
    /// is the cost of one via in wire-cell units.
    pub fn weighted_cost(&self, via_weight: u64) -> u64 {
        self.wirelength + via_weight * self.vias
    }
}

impl fmt::Display for RouteStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wirelength {}, vias {}, traces {}", self.wirelength, self.vias, self.traces)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weighted_cost() {
        let s = RouteStats { wirelength: 10, vias: 3, traces: 2 };
        assert_eq!(s.weighted_cost(2), 16);
        assert_eq!(s.weighted_cost(0), 10);
    }

    #[test]
    fn display_mentions_all_fields() {
        let s = RouteStats { wirelength: 1, vias: 2, traces: 3 };
        let text = s.to_string();
        assert!(text.contains('1') && text.contains('2') && text.contains('3'));
    }
}
