use std::fmt;

/// Counters describing how much work — and how much modification — a
/// routing run needed. The ablation experiments report these directly.
///
/// This is the workspace-wide work-accounting type: the rip-up router
/// fills it from its own control flow, and
/// [`MetricsRecorder`](crate::MetricsRecorder) reconstructs the same
/// counters from [`RouteObserver`](crate::RouteObserver) events, so the
/// engine and the bench tables consume one vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RouterStats {
    /// Connections routed through free space on the first try.
    pub hard_routes: u64,
    /// Connections that needed an interference (soft) path.
    pub soft_routes: u64,
    /// Weak modifications: blocking wiring pushed aside and immediately
    /// re-routed in place.
    pub weak_pushes: u64,
    /// Weak modifications rolled back because a victim could not be
    /// repaired in place (weak-only configurations).
    pub weak_rollbacks: u64,
    /// Strong modifications: victim traces ripped and re-enqueued.
    pub rips: u64,
    /// Re-route tasks processed for previously ripped nets.
    pub reroutes: u64,
    /// Total search nodes settled across all searches.
    pub expanded: u64,
    /// Total queue events processed.
    pub events: u64,
}

impl RouterStats {
    /// Total modification events (weak pushes plus rips).
    pub fn modifications(&self) -> u64 {
        self.weak_pushes + self.rips
    }

    /// Accumulates another run's counters into this one — the batch
    /// engine's aggregation primitive.
    pub fn absorb(&mut self, other: &RouterStats) {
        self.hard_routes += other.hard_routes;
        self.soft_routes += other.soft_routes;
        self.weak_pushes += other.weak_pushes;
        self.weak_rollbacks += other.weak_rollbacks;
        self.rips += other.rips;
        self.reroutes += other.reroutes;
        self.expanded += other.expanded;
        self.events += other.events;
    }
}

impl fmt::Display for RouterStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "hard {}, soft {}, weak {} (rollback {}), rips {}, reroutes {}, expanded {}, events {}",
            self.hard_routes,
            self.soft_routes,
            self.weak_pushes,
            self.weak_rollbacks,
            self.rips,
            self.reroutes,
            self.expanded,
            self.events
        )
    }
}

/// Aggregate wiring statistics of a [`RouteDb`](crate::RouteDb).
///
/// Produced by [`RouteDb::stats`](crate::RouteDb::stats).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RouteStats {
    /// Occupied `(cell, layer)` slots beyond the pins — total wire cells.
    pub wirelength: u64,
    /// Number of vias (M1–M2 connections).
    pub vias: u64,
    /// Number of live committed traces.
    pub traces: u64,
}

impl RouteStats {
    /// Common scalar quality figure: wirelength plus a via penalty.
    ///
    /// Vias are conventionally weighted heavier than wire cells; `weight`
    /// is the cost of one via in wire-cell units.
    pub fn weighted_cost(&self, via_weight: u64) -> u64 {
        self.wirelength + via_weight * self.vias
    }
}

impl fmt::Display for RouteStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wirelength {}, vias {}, traces {}", self.wirelength, self.vias, self.traces)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modifications_sum() {
        let s = RouterStats { weak_pushes: 3, rips: 2, ..Default::default() };
        assert_eq!(s.modifications(), 5);
    }

    #[test]
    fn absorb_accumulates_every_counter() {
        let a = RouterStats {
            hard_routes: 1,
            soft_routes: 2,
            weak_pushes: 3,
            weak_rollbacks: 4,
            rips: 5,
            reroutes: 6,
            expanded: 7,
            events: 8,
        };
        let mut total = a;
        total.absorb(&a);
        assert_eq!(
            total,
            RouterStats {
                hard_routes: 2,
                soft_routes: 4,
                weak_pushes: 6,
                weak_rollbacks: 8,
                rips: 10,
                reroutes: 12,
                expanded: 14,
                events: 16,
            }
        );
    }

    #[test]
    fn router_display_is_nonempty() {
        assert!(!RouterStats::default().to_string().is_empty());
    }

    #[test]
    fn weighted_cost() {
        let s = RouteStats { wirelength: 10, vias: 3, traces: 2 };
        assert_eq!(s.weighted_cost(2), 16);
        assert_eq!(s.weighted_cost(0), 10);
    }

    #[test]
    fn display_mentions_all_fields() {
        let s = RouteStats { wirelength: 1, vias: 2, traces: 3 };
        let text = s.to_string();
        assert!(text.contains('1') && text.contains('2') && text.contains('3'));
    }
}
