use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use route_geom::{Layer, Point, NUM_LAYERS};

use crate::{Grid, NetId, Occupant, Pin, Problem};

/// One cell of a routed path: a grid point on a layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Step {
    /// Grid cell.
    pub at: Point,
    /// Layer occupied at that cell.
    pub layer: Layer,
}

impl Step {
    /// Creates a step.
    pub const fn new(at: Point, layer: Layer) -> Self {
        Step { at, layer }
    }
}

impl fmt::Display for Step {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.at, self.layer)
    }
}

/// Error produced when constructing or committing a [`Trace`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// A trace must contain at least one step.
    Empty,
    /// Two consecutive steps are neither grid-adjacent on one layer nor a
    /// layer change at the same point.
    NotContiguous {
        /// First of the offending pair.
        from: Step,
        /// Second of the offending pair.
        to: Step,
    },
    /// A step lands on a cell the net may not occupy.
    Occupied {
        /// The offending step.
        step: Step,
        /// What currently occupies that slot.
        by: Occupant,
    },
    /// A step is outside the grid.
    OutOfBounds {
        /// The offending step.
        step: Step,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Empty => f.write_str("trace has no steps"),
            TraceError::NotContiguous { from, to } => {
                write!(f, "steps {from} and {to} are not contiguous")
            }
            TraceError::Occupied { step, by } => {
                write!(f, "step {step} lands on a slot occupied by {by}")
            }
            TraceError::OutOfBounds { step } => write!(f, "step {step} is outside the grid"),
        }
    }
}

impl Error for TraceError {}

/// A contiguous routed path: a sequence of steps where consecutive steps
/// are either Manhattan-adjacent on the same layer (a wire segment) or
/// share a point on different layers (a via).
///
/// # Examples
///
/// ```
/// use route_model::{Step, Trace};
/// use route_geom::{Layer, Point};
///
/// let t = Trace::from_steps(vec![
///     Step::new(Point::new(0, 0), Layer::M1),
///     Step::new(Point::new(1, 0), Layer::M1),
///     Step::new(Point::new(1, 0), Layer::M2), // via
///     Step::new(Point::new(1, 1), Layer::M2),
/// ])?;
/// assert_eq!(t.via_points().count(), 1);
/// assert_eq!(t.wire_cells(), 4);
/// # Ok::<(), route_model::TraceError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    steps: Vec<Step>,
}

impl Trace {
    /// Validates contiguity and wraps the steps.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Empty`] for an empty step list and
    /// [`TraceError::NotContiguous`] if any consecutive pair is neither a
    /// unit wire step nor a via transition.
    pub fn from_steps(steps: Vec<Step>) -> Result<Self, TraceError> {
        if steps.is_empty() {
            return Err(TraceError::Empty);
        }
        for w in steps.windows(2) {
            let (a, b) = (w[0], w[1]);
            let wire = a.layer == b.layer && a.at.manhattan(b.at) == 1;
            // Vias join adjacent layers only; an M1->M3 jump is illegal.
            let via = a.at == b.at && a.layer.is_adjacent(b.layer);
            if !wire && !via {
                return Err(TraceError::NotContiguous { from: a, to: b });
            }
        }
        Ok(Trace { steps })
    }

    /// The steps in path order.
    pub fn steps(&self) -> &[Step] {
        &self.steps
    }

    /// First step of the path.
    pub fn start(&self) -> Step {
        self.steps[0]
    }

    /// Last step of the path.
    pub fn end(&self) -> Step {
        *self.steps.last().expect("trace is never empty")
    }

    /// Vias of the path in order, as `(point, lower layer of the pair)`.
    pub fn via_points(&self) -> impl Iterator<Item = (Point, Layer)> + '_ {
        self.steps.windows(2).filter_map(|w| {
            let lower = w[0].layer.via_pair_with(w[1].layer)?;
            Some((w[0].at, lower))
        })
    }

    /// Number of distinct `(point, layer)` slots the path occupies.
    ///
    /// A via transition revisits the same point on another layer, so this
    /// equals the step count (steps never repeat a slot in a shortest
    /// path, and committed traces are deduplicated by the database).
    pub fn wire_cells(&self) -> usize {
        self.steps.len()
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace {} -> {} ({} steps)", self.start(), self.end(), self.steps.len())
    }
}

/// Handle identifying one committed trace inside a [`RouteDb`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceId {
    /// Net the trace belongs to.
    pub net: NetId,
    pub(crate) slot: usize,
}

#[derive(Debug, Clone, Default)]
struct NetState {
    pins: Vec<Pin>,
    /// Committed traces; `None` slots are ripped-up traces.
    traces: Vec<Option<Trace>>,
    /// Refcount per occupied (point, layer) slot. Pin slots start at 1.
    occ: HashMap<(Point, Layer), u32>,
    /// Refcount per via, keyed by point and the pair's lower layer.
    vias: HashMap<(Point, Layer), u32>,
}

/// A live routing database: the occupancy [`Grid`] plus every committed
/// [`Trace`], with support for incremental commit and rip-up.
///
/// The database maintains the invariant that the grid occupancy is exactly
/// the union of all pins and live traces: committing marks cells, ripping
/// up unmarks cells that no other live trace (or pin) of the same net
/// still covers. Pins are marked at construction and can never be ripped.
///
/// # Examples
///
/// ```
/// use route_model::{ProblemBuilder, PinSide, RouteDb, Step, Trace};
/// use route_geom::{Layer, Point};
///
/// let mut b = ProblemBuilder::switchbox(4, 3);
/// b.net("a").pin_side(PinSide::Left, 1).pin_side(PinSide::Right, 1);
/// let problem = b.build()?;
/// let mut db = RouteDb::new(&problem);
///
/// let path = Trace::from_steps((0..4).map(|x| {
///     Step::new(Point::new(x, 1), Layer::M1)
/// }).collect())?;
/// let id = db.commit(problem.nets()[0].id, path)?;
/// // 4 occupied slots, of which 2 are the pins themselves.
/// assert_eq!(db.stats().wirelength, 2);
/// db.rip_up(id);
/// assert_eq!(db.stats().wirelength, 0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct RouteDb {
    grid: Grid,
    nets: Vec<NetState>,
}

impl RouteDb {
    /// Creates a database for `problem` with all pins marked and no wiring.
    pub fn new(problem: &Problem) -> Self {
        let mut grid = problem.base_grid();
        let mut nets = Vec::with_capacity(problem.nets().len());
        for net in problem.nets() {
            let mut state = NetState { pins: net.pins.clone(), ..NetState::default() };
            for pin in &net.pins {
                grid.set_occupant(pin.at, pin.layer, Occupant::Net(net.id));
                *state.occ.entry((pin.at, pin.layer)).or_insert(0) += 1;
            }
            nets.push(state);
        }
        RouteDb { grid, nets }
    }

    /// The current occupancy grid.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// Number of nets tracked.
    pub fn net_count(&self) -> usize {
        self.nets.len()
    }

    /// The pins of `net` as recorded at construction.
    pub fn pins(&self, net: NetId) -> &[Pin] {
        &self.nets[net.index()].pins
    }

    /// Live traces of `net`, with their ids.
    pub fn traces(&self, net: NetId) -> impl Iterator<Item = (TraceId, &Trace)> {
        self.nets[net.index()]
            .traces
            .iter()
            .enumerate()
            .filter_map(move |(slot, t)| t.as_ref().map(|t| (TraceId { net, slot }, t)))
    }

    /// The trace with the given id, if still live.
    pub fn trace(&self, id: TraceId) -> Option<&Trace> {
        self.nets[id.net.index()].traces.get(id.slot)?.as_ref()
    }

    /// Every `(point, layer)` slot currently occupied by `net` (pins and
    /// wiring), in unspecified order.
    pub fn net_slots(&self, net: NetId) -> Vec<Step> {
        self.nets[net.index()].occ.keys().map(|&(at, layer)| Step::new(at, layer)).collect()
    }

    /// Number of `(point, layer)` slots currently occupied by `net`,
    /// pins included.
    pub fn slot_count(&self, net: NetId) -> usize {
        self.nets[net.index()].occ.len()
    }

    /// Whether every pin of `net` belongs to one electrically connected
    /// component of its occupancy (same-layer adjacency plus vias).
    ///
    /// This is the routers' completion test; the independent checker in
    /// `route-verify` deliberately re-implements connectivity rather
    /// than trusting this method.
    pub fn is_net_connected(&self, net: NetId) -> bool {
        let state = &self.nets[net.index()];
        let Some(first) = state.pins.first() else { return true };
        // Slot membership is read off the grid (occupant == `Net(net)`
        // iff the slot is in `state.occ` — the commit/rip paths keep the
        // two coherent) and visited marks live in a dense bitmap, so
        // the completion test performs no hashing.
        let w = self.grid.width() as usize;
        let node = |p: Point, l: Layer| (p.y as usize * w + p.x as usize) * NUM_LAYERS + l.index();
        let mut seen = vec![0u64; (w * self.grid.height() as usize * NUM_LAYERS).div_ceil(64)];
        let owns = |p: Point, l: Layer| {
            self.grid.in_bounds(p) && self.grid.occupant(p, l) == Occupant::Net(net)
        };
        let mut queue = std::collections::VecDeque::from([(first.at, first.layer)]);
        let start = node(first.at, first.layer);
        seen[start >> 6] |= 1 << (start & 63);
        while let Some((p, layer)) = queue.pop_front() {
            for n in p.neighbors() {
                if owns(n, layer) {
                    let key = node(n, layer);
                    if seen[key >> 6] >> (key & 63) & 1 == 0 {
                        seen[key >> 6] |= 1 << (key & 63);
                        queue.push_back((n, layer));
                    }
                }
            }
            for adj in layer.adjacent() {
                let lower = layer.via_pair_with(adj).expect("adjacent layers pair");
                if self.grid.via_between(p, lower) == Some(net) && owns(p, adj) {
                    let key = node(p, adj);
                    if seen[key >> 6] >> (key & 63) & 1 == 0 {
                        seen[key >> 6] |= 1 << (key & 63);
                        queue.push_back((p, adj));
                    }
                }
            }
        }
        state.pins.iter().all(|pin| {
            let key = node(pin.at, pin.layer);
            seen[key >> 6] >> (key & 63) & 1 == 1
        })
    }

    /// Number of vias currently owned by `net`.
    pub fn via_count(&self, net: NetId) -> usize {
        self.nets[net.index()].vias.len()
    }

    /// Rips every live trace of `net` lying in a connected component of
    /// the net's occupancy that touches no pin (dead wire, lint `L008`),
    /// returning the total step count of the ripped traces.
    ///
    /// A trace is contiguous, so it lies entirely in one component and
    /// membership is decided by its first step. Hierarchical flows call
    /// this after stitching: sub-problems abandoned mid-route (a failed
    /// tile, a ripped seam) leave fragments that hold no pin and only
    /// waste capacity.
    pub fn prune_dangling(&mut self, net: NetId) -> usize {
        let pins = self.nets[net.index()].pins.clone();
        if pins.is_empty() {
            return 0;
        }
        let w = self.grid.width() as usize;
        let node = |p: Point, l: Layer| (p.y as usize * w + p.x as usize) * NUM_LAYERS + l.index();
        let mut seen = vec![0u64; (w * self.grid.height() as usize * NUM_LAYERS).div_ceil(64)];
        let owns = |p: Point, l: Layer| {
            self.grid.in_bounds(p) && self.grid.occupant(p, l) == Occupant::Net(net)
        };
        let mut queue = std::collections::VecDeque::new();
        for pin in &pins {
            let key = node(pin.at, pin.layer);
            if seen[key >> 6] >> (key & 63) & 1 == 0 {
                seen[key >> 6] |= 1 << (key & 63);
                queue.push_back((pin.at, pin.layer));
            }
        }
        while let Some((p, layer)) = queue.pop_front() {
            for n in p.neighbors() {
                if owns(n, layer) {
                    let key = node(n, layer);
                    if seen[key >> 6] >> (key & 63) & 1 == 0 {
                        seen[key >> 6] |= 1 << (key & 63);
                        queue.push_back((n, layer));
                    }
                }
            }
            for adj in layer.adjacent() {
                let lower = layer.via_pair_with(adj).expect("adjacent layers pair");
                if self.grid.via_between(p, lower) == Some(net) && owns(p, adj) {
                    let key = node(p, adj);
                    if seen[key >> 6] >> (key & 63) & 1 == 0 {
                        seen[key >> 6] |= 1 << (key & 63);
                        queue.push_back((p, adj));
                    }
                }
            }
        }
        let dead: Vec<TraceId> = self
            .traces(net)
            .filter(|(_, t)| {
                let s = t.steps()[0];
                let key = node(s.at, s.layer);
                seen[key >> 6] >> (key & 63) & 1 == 0
            })
            .map(|(id, _)| id)
            .collect();
        let mut ripped = 0;
        for id in dead {
            if let Some(t) = self.rip_up(id) {
                ripped += t.steps().len();
            }
        }
        ripped
    }

    /// Validates that `trace` can be committed for `net` against the
    /// current grid, without modifying anything.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::OutOfBounds`] or [`TraceError::Occupied`] on
    /// the first offending step.
    pub fn check(&self, net: NetId, trace: &Trace) -> Result<(), TraceError> {
        for &step in trace.steps() {
            if !self.grid.in_bounds(step.at) {
                return Err(TraceError::OutOfBounds { step });
            }
            match self.grid.occupant(step.at, step.layer) {
                Occupant::Free => {}
                Occupant::Net(n) if n == net => {}
                by => return Err(TraceError::Occupied { step, by }),
            }
        }
        Ok(())
    }

    /// Commits a trace for `net`, marking its cells and vias on the grid.
    ///
    /// # Errors
    ///
    /// Fails (leaving the database untouched) if any step is out of
    /// bounds or lands on a slot held by an obstacle or another net.
    pub fn commit(&mut self, net: NetId, trace: Trace) -> Result<TraceId, TraceError> {
        self.check(net, &trace)?;
        let state = &mut self.nets[net.index()];
        for &step in trace.steps() {
            let count = state.occ.entry((step.at, step.layer)).or_insert(0);
            if *count == 0 {
                self.grid.set_occupant(step.at, step.layer, Occupant::Net(net));
            }
            *count += 1;
        }
        for (p, lower) in trace.via_points() {
            let count = state.vias.entry((p, lower)).or_insert(0);
            if *count == 0 {
                self.grid.set_via_between(p, lower, Some(net));
            }
            *count += 1;
        }
        state.traces.push(Some(trace));
        Ok(TraceId { net, slot: state.traces.len() - 1 })
    }

    /// Removes a committed trace, unmarking cells no longer covered by any
    /// live trace or pin of the same net.
    ///
    /// Returns the removed trace, or `None` if `id` was already ripped.
    pub fn rip_up(&mut self, id: TraceId) -> Option<Trace> {
        let state = &mut self.nets[id.net.index()];
        let trace = state.traces.get_mut(id.slot)?.take()?;
        for &step in trace.steps() {
            let key = (step.at, step.layer);
            let count = state.occ.get_mut(&key).expect("committed slot has refcount");
            *count -= 1;
            if *count == 0 {
                state.occ.remove(&key);
                self.grid.set_occupant(step.at, step.layer, Occupant::Free);
            }
        }
        for (p, lower) in trace.via_points() {
            let count = state.vias.get_mut(&(p, lower)).expect("committed via has refcount");
            *count -= 1;
            if *count == 0 {
                state.vias.remove(&(p, lower));
                self.grid.set_via_between(p, lower, None);
            }
        }
        Some(trace)
    }

    /// Removes every live trace of `net`, returning them in commit order.
    pub fn rip_up_net(&mut self, net: NetId) -> Vec<Trace> {
        let ids: Vec<TraceId> = self.traces(net).map(|(id, _)| id).collect();
        ids.into_iter().filter_map(|id| self.rip_up(id)).collect()
    }

    /// The traces of `net` that cover a given slot.
    pub fn traces_covering(&self, net: NetId, at: Point, layer: Layer) -> Vec<TraceId> {
        self.traces(net)
            .filter(|(_, t)| t.steps().iter().any(|s| s.at == at && s.layer == layer))
            .map(|(id, _)| id)
            .collect()
    }

    /// Aggregate wiring statistics over all nets.
    pub fn stats(&self) -> crate::RouteStats {
        let mut wirelength = 0u64;
        let mut vias = 0u64;
        let mut traces = 0u64;
        for state in &self.nets {
            let pin_slots: u64 = state.pins.len() as u64;
            let occ_slots = state.occ.len() as u64;
            // Pins that remain wire-free are not wirelength; occupied
            // slots beyond the pins are. Pins covered by wiring count once.
            wirelength += occ_slots.saturating_sub(pin_slots);
            vias += state.vias.len() as u64;
            traces += state.traces.iter().flatten().count() as u64;
        }
        crate::RouteStats { wirelength, vias, traces }
    }

    /// An order-independent fingerprint of the physical routing state:
    /// grid dimensions, per-slot occupancy and via ownership, hashed
    /// with FNV-1a in row-major order.
    ///
    /// Two databases with the same checksum hold the same metal — how
    /// the wiring is split into traces does not enter the hash. This is
    /// what the batch engine compares to prove that routing with 1
    /// thread and with N threads produced bit-identical results.
    pub fn checksum(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut eat = |v: u64| {
            for byte in v.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(FNV_PRIME);
            }
        };
        eat(u64::from(self.grid.width()));
        eat(u64::from(self.grid.height()));
        for p in self.grid.points() {
            for layer in Layer::ALL {
                let code = match self.grid.occupant(p, layer) {
                    Occupant::Free => 0,
                    Occupant::Blocked => 1,
                    Occupant::Net(n) => 2 + n.index() as u64,
                };
                eat(code);
            }
            for lower in [Layer::M1, Layer::M2] {
                let code = match self.grid.via_between(p, lower) {
                    None => 0,
                    Some(n) => 1 + n.index() as u64,
                };
                eat(code);
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PinSide, ProblemBuilder};

    fn one_net_problem() -> Problem {
        let mut b = ProblemBuilder::switchbox(5, 4);
        b.net("a").pin_side(PinSide::Left, 1).pin_side(PinSide::Right, 1);
        b.build().unwrap()
    }

    fn straight_m1(y: i32, x0: i32, x1: i32) -> Trace {
        Trace::from_steps((x0..=x1).map(|x| Step::new(Point::new(x, y), Layer::M1)).collect())
            .unwrap()
    }

    #[test]
    fn trace_rejects_gaps() {
        let err = Trace::from_steps(vec![
            Step::new(Point::new(0, 0), Layer::M1),
            Step::new(Point::new(2, 0), Layer::M1),
        ]);
        assert!(matches!(err, Err(TraceError::NotContiguous { .. })));
        assert_eq!(Trace::from_steps(vec![]), Err(TraceError::Empty));
    }

    #[test]
    fn trace_accepts_vias() {
        let t = Trace::from_steps(vec![
            Step::new(Point::new(0, 0), Layer::M1),
            Step::new(Point::new(0, 0), Layer::M2),
            Step::new(Point::new(0, 1), Layer::M2),
        ])
        .unwrap();
        assert_eq!(t.via_points().collect::<Vec<_>>(), vec![(Point::new(0, 0), Layer::M1)]);
    }

    #[test]
    fn commit_marks_grid() {
        let p = one_net_problem();
        let net = p.nets()[0].id;
        let mut db = RouteDb::new(&p);
        db.commit(net, straight_m1(1, 0, 4)).unwrap();
        for x in 0..5 {
            assert_eq!(db.grid().occupant(Point::new(x, 1), Layer::M1), Occupant::Net(net));
        }
    }

    #[test]
    fn commit_rejects_foreign_occupancy() {
        let mut b = ProblemBuilder::switchbox(5, 4);
        b.net("a").pin_side(PinSide::Left, 1).pin_side(PinSide::Right, 1);
        b.net("b").pin_side(PinSide::Left, 2).pin_side(PinSide::Right, 2);
        let p = b.build().unwrap();
        let (a, bnet) = (p.nets()[0].id, p.nets()[1].id);
        let mut db = RouteDb::new(&p);
        db.commit(a, straight_m1(1, 0, 4)).unwrap();
        // Net b tries to cross row 1 on M1: blocked at (2,1).
        let err = db.commit(bnet, straight_m1(1, 2, 3));
        assert!(matches!(err, Err(TraceError::Occupied { .. })));
        // And the database was not modified by the failed commit.
        assert_eq!(db.traces(bnet).count(), 0);
    }

    #[test]
    fn rip_up_restores_grid() {
        let p = one_net_problem();
        let net = p.nets()[0].id;
        let mut db = RouteDb::new(&p);
        let id = db.commit(net, straight_m1(1, 0, 4)).unwrap();
        let removed = db.rip_up(id).unwrap();
        assert_eq!(removed.steps().len(), 5);
        // Interior cells freed, pin cells still owned.
        assert_eq!(db.grid().occupant(Point::new(2, 1), Layer::M1), Occupant::Free);
        assert_eq!(db.grid().occupant(Point::new(0, 1), Layer::M1), Occupant::Net(net));
        assert_eq!(db.grid().occupant(Point::new(4, 1), Layer::M1), Occupant::Net(net));
        // Double rip-up is a no-op.
        assert!(db.rip_up(id).is_none());
    }

    #[test]
    fn overlapping_traces_refcount() {
        let p = one_net_problem();
        let net = p.nets()[0].id;
        let mut db = RouteDb::new(&p);
        let t1 = db.commit(net, straight_m1(1, 0, 4)).unwrap();
        // A second trace sharing cell (2,1): a stub going north from the spine.
        let stub = Trace::from_steps(vec![
            Step::new(Point::new(2, 1), Layer::M1),
            Step::new(Point::new(2, 1), Layer::M2),
            Step::new(Point::new(2, 2), Layer::M2),
        ])
        .unwrap();
        let _t2 = db.commit(net, stub).unwrap();
        db.rip_up(t1);
        // (2,1) on M1 still held by the stub.
        assert_eq!(db.grid().occupant(Point::new(2, 1), Layer::M1), Occupant::Net(net));
        // But (3,1) was only in t1.
        assert_eq!(db.grid().occupant(Point::new(3, 1), Layer::M1), Occupant::Free);
    }

    #[test]
    fn vias_marked_and_cleared() {
        let p = one_net_problem();
        let net = p.nets()[0].id;
        let mut db = RouteDb::new(&p);
        let t = Trace::from_steps(vec![
            Step::new(Point::new(0, 1), Layer::M1),
            Step::new(Point::new(0, 1), Layer::M2),
            Step::new(Point::new(0, 2), Layer::M2),
        ])
        .unwrap();
        let id = db.commit(net, t).unwrap();
        assert_eq!(db.grid().via_between(Point::new(0, 1), Layer::M1), Some(net));
        db.rip_up(id);
        assert_eq!(db.grid().via_between(Point::new(0, 1), Layer::M1), None);
    }

    #[test]
    fn stats_track_wiring() {
        let p = one_net_problem();
        let net = p.nets()[0].id;
        let mut db = RouteDb::new(&p);
        assert_eq!(db.stats().wirelength, 0);
        db.commit(net, straight_m1(1, 0, 4)).unwrap();
        let s = db.stats();
        // 5 occupied slots, 2 of them pins.
        assert_eq!(s.wirelength, 3);
        assert_eq!(s.vias, 0);
        assert_eq!(s.traces, 1);
    }

    #[test]
    fn rip_up_net_clears_everything() {
        let p = one_net_problem();
        let net = p.nets()[0].id;
        let mut db = RouteDb::new(&p);
        db.commit(net, straight_m1(1, 0, 4)).unwrap();
        db.commit(net, straight_m1(2, 0, 0)).unwrap();
        let ripped = db.rip_up_net(net);
        assert_eq!(ripped.len(), 2);
        assert_eq!(db.stats().wirelength, 0);
        assert_eq!(db.traces(net).count(), 0);
    }

    #[test]
    fn traces_covering_finds_owner() {
        let p = one_net_problem();
        let net = p.nets()[0].id;
        let mut db = RouteDb::new(&p);
        let id = db.commit(net, straight_m1(1, 0, 4)).unwrap();
        assert_eq!(db.traces_covering(net, Point::new(3, 1), Layer::M1), vec![id]);
        assert!(db.traces_covering(net, Point::new(3, 2), Layer::M1).is_empty());
    }

    #[test]
    fn net_slots_include_pins() {
        let p = one_net_problem();
        let net = p.nets()[0].id;
        let db = RouteDb::new(&p);
        let slots = db.net_slots(net);
        assert_eq!(slots.len(), 2);
    }

    #[test]
    fn check_out_of_bounds() {
        let p = one_net_problem();
        let net = p.nets()[0].id;
        let db = RouteDb::new(&p);
        let t = Trace::from_steps(vec![Step::new(Point::new(-1, 0), Layer::M1)]).unwrap();
        assert!(matches!(db.check(net, &t), Err(TraceError::OutOfBounds { .. })));
    }

    #[test]
    fn prune_dangling_rips_only_pinless_components() {
        let p = one_net_problem();
        let net = p.nets()[0].id;
        let mut db = RouteDb::new(&p);
        // The pin-connecting trace plus a floating fragment on row 3.
        db.commit(net, straight_m1(1, 0, 4)).unwrap();
        db.commit(net, straight_m1(3, 1, 3)).unwrap();
        assert!(db.is_net_connected(net));
        assert_eq!(db.prune_dangling(net), 3);
        assert!(db.is_net_connected(net));
        assert_eq!(db.traces(net).count(), 1, "the live trace survives");
        assert_eq!(db.grid().occupant(Point::new(2, 3), Layer::M1), Occupant::Free);
        // A second pass finds nothing left to rip.
        assert_eq!(db.prune_dangling(net), 0);
    }

    #[test]
    fn prune_dangling_follows_vias() {
        let p = one_net_problem();
        let net = p.nets()[0].id;
        let mut db = RouteDb::new(&p);
        db.commit(net, straight_m1(1, 0, 4)).unwrap();
        // A live spur that changes layers: reachable through the via.
        let spur = Trace::from_steps(vec![
            Step::new(Point::new(2, 1), Layer::M1),
            Step::new(Point::new(2, 1), Layer::M2),
            Step::new(Point::new(2, 2), Layer::M2),
        ])
        .unwrap();
        db.commit(net, spur).unwrap();
        assert_eq!(db.prune_dangling(net), 0, "via-linked wiring is live");
        assert_eq!(db.traces(net).count(), 2);
    }
}
