//! Routing observability: the [`RouteObserver`] event vocabulary.
//!
//! The paper's core claims are about *behaviour under pressure* — how
//! often the router falls back to interference search, how many weak
//! pushes absorb the damage, how many strong rip-ups are needed and how
//! far the crossing penalty escalates before a run completes. Those
//! internals used to be visible only as post-hoc aggregate counters;
//! this module makes them a first-class event stream.
//!
//! Every router behind
//! [`DetailedRouter`](crate::DetailedRouter) emits the same vocabulary
//! through [`DetailedRouter::route_observed`](crate::DetailedRouter::route_observed):
//!
//! * [`on_net_scheduled`](RouteObserver::on_net_scheduled) — a net was
//!   pulled off the work queue.
//! * [`on_search_done`](RouteObserver::on_search_done) — one maze search
//!   finished, with its expansion/heap effort and whether it found a
//!   path.
//! * [`on_weak_modification`](RouteObserver::on_weak_modification) — a
//!   blocking net was pushed aside and repaired in place.
//! * [`on_strong_ripup`](RouteObserver::on_strong_ripup) — a victim's
//!   wiring was ripped and the victim re-enqueued.
//! * [`on_penalty_escalation`](RouteObserver::on_penalty_escalation) —
//!   a victim's crossing penalty grew after a rip.
//! * [`on_net_committed`](RouteObserver::on_net_committed) /
//!   [`on_net_failed`](RouteObserver::on_net_failed) — terminal events
//!   for one net's routing attempt.
//!
//! All methods default to no-ops, so an observer implements only what it
//! cares about and the [`NopObserver`] costs nothing but a virtual call
//! to an empty body. Observation never changes routing behaviour:
//! observer-on and observer-off runs produce bit-identical databases.
//!
//! # Examples
//!
//! ```
//! use route_model::{DetailedRouter, EventLog, NopObserver, ProblemBuilder, PinSide};
//!
//! struct GiveUp;
//! impl DetailedRouter for GiveUp {
//!     fn name(&self) -> &str { "give-up" }
//!     fn route(&self, problem: &route_model::Problem) -> route_model::RouteResult {
//!         Ok(route_model::Routing {
//!             db: route_model::RouteDb::new(problem),
//!             failed: problem.nets().iter().map(|n| n.id).collect(),
//!         })
//!     }
//! }
//!
//! let mut b = ProblemBuilder::switchbox(4, 3);
//! b.net("a").pin_side(PinSide::Left, 1).pin_side(PinSide::Right, 1);
//! let problem = b.build()?;
//!
//! // Even a router without bespoke instrumentation emits the shared
//! // summary vocabulary through the provided `route_observed`.
//! let mut log = EventLog::new();
//! GiveUp.route_observed(&problem, &mut log).unwrap();
//! assert_eq!(log.events().len(), 2); // scheduled + failed
//! # Ok::<(), route_model::ProblemError>(())
//! ```

use crate::NetId;

/// Which search mode produced a [`SearchProbe`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchKind {
    /// Hard search: only free cells and the net's own wiring.
    Hard,
    /// Interference (soft) search: foreign wiring crossable at a penalty.
    Soft,
}

/// Effort snapshot of one finished maze search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SearchProbe {
    /// Nodes settled (popped with final cost).
    pub expanded: u64,
    /// Edge relaxations attempted.
    pub relaxed: u64,
    /// Largest open-list (heap) size reached during the search.
    pub heap_peak: u64,
    /// Whether a path was found.
    pub found: bool,
}

/// Observer of routing progress. All methods are no-op by default.
///
/// Implementations must not change routing behaviour — they see events,
/// they do not steer. The workspace ships three:
/// [`NopObserver`] (the zero-cost default), [`EventLog`] (records the
/// raw stream for traces and golden tests) and
/// [`MetricsRecorder`](crate::MetricsRecorder) (counters + histograms).
pub trait RouteObserver {
    /// A net was pulled off the work queue for (re-)routing.
    fn on_net_scheduled(&mut self, _net: NetId) {}

    /// One maze search finished (successfully or not).
    fn on_search_done(&mut self, _net: NetId, _kind: SearchKind, _probe: SearchProbe) {}

    /// `victim`'s blocking wiring was pushed aside by `net` and repaired
    /// in place (weak modification).
    fn on_weak_modification(&mut self, _net: NetId, _victim: NetId) {}

    /// `victim`'s wiring was ripped by `net` and `victim` re-enqueued
    /// (strong modification); `rip_count` is the victim's new total.
    fn on_strong_ripup(&mut self, _net: NetId, _victim: NetId, _rip_count: u32) {}

    /// `victim`'s crossing penalty escalated to `penalty` after a rip.
    fn on_penalty_escalation(&mut self, _victim: NetId, _penalty: u64) {}

    /// Every pin of `net` is now connected.
    fn on_net_committed(&mut self, _net: NetId) {}

    /// `net` was declared failed and its wiring released.
    fn on_net_failed(&mut self, _net: NetId) {}
}

/// The do-nothing observer: what un-instrumented entry points pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NopObserver;

impl RouteObserver for NopObserver {}

/// One recorded [`RouteObserver`] event, suitable for machine-readable
/// traces and golden-sequence tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteEvent {
    /// See [`RouteObserver::on_net_scheduled`].
    NetScheduled {
        /// The net pulled off the queue.
        net: NetId,
    },
    /// See [`RouteObserver::on_search_done`].
    SearchDone {
        /// The net being routed.
        net: NetId,
        /// Search mode.
        kind: SearchKind,
        /// Effort and outcome.
        probe: SearchProbe,
    },
    /// See [`RouteObserver::on_weak_modification`].
    WeakModification {
        /// The net whose path displaced the victim.
        net: NetId,
        /// The pushed-and-repaired net.
        victim: NetId,
    },
    /// See [`RouteObserver::on_strong_ripup`].
    StrongRipup {
        /// The net whose path displaced the victim.
        net: NetId,
        /// The ripped net.
        victim: NetId,
        /// The victim's total rip count after this rip.
        rip_count: u32,
    },
    /// See [`RouteObserver::on_penalty_escalation`].
    PenaltyEscalation {
        /// The ripped net whose penalty grew.
        victim: NetId,
        /// The new per-slot crossing penalty.
        penalty: u64,
    },
    /// See [`RouteObserver::on_net_committed`].
    NetCommitted {
        /// The fully connected net.
        net: NetId,
    },
    /// See [`RouteObserver::on_net_failed`].
    NetFailed {
        /// The net declared unroutable.
        net: NetId,
    },
}

impl RouteEvent {
    /// A short stable name for the event type (trace `"ev"` field).
    pub fn kind_name(&self) -> &'static str {
        match self {
            RouteEvent::NetScheduled { .. } => "net_scheduled",
            RouteEvent::SearchDone { .. } => "search_done",
            RouteEvent::WeakModification { .. } => "weak_modification",
            RouteEvent::StrongRipup { .. } => "strong_ripup",
            RouteEvent::PenaltyEscalation { .. } => "penalty_escalation",
            RouteEvent::NetCommitted { .. } => "net_committed",
            RouteEvent::NetFailed { .. } => "net_failed",
        }
    }

    /// Replays this event into another observer — the bridge between a
    /// recorded [`EventLog`] and derived views such as
    /// [`MetricsRecorder`](crate::MetricsRecorder).
    pub fn replay(&self, obs: &mut dyn RouteObserver) {
        match *self {
            RouteEvent::NetScheduled { net } => obs.on_net_scheduled(net),
            RouteEvent::SearchDone { net, kind, probe } => obs.on_search_done(net, kind, probe),
            RouteEvent::WeakModification { net, victim } => obs.on_weak_modification(net, victim),
            RouteEvent::StrongRipup { net, victim, rip_count } => {
                obs.on_strong_ripup(net, victim, rip_count)
            }
            RouteEvent::PenaltyEscalation { victim, penalty } => {
                obs.on_penalty_escalation(victim, penalty)
            }
            RouteEvent::NetCommitted { net } => obs.on_net_committed(net),
            RouteEvent::NetFailed { net } => obs.on_net_failed(net),
        }
    }
}

/// An observer that records the raw event stream in order.
///
/// The log is the currency of machine-readable traces (see the
/// `route_bench` trace writer) and of golden-sequence tests; replay it
/// into any other observer with [`EventLog::replay`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EventLog {
    events: Vec<RouteEvent>,
}

impl EventLog {
    /// An empty log.
    pub fn new() -> Self {
        EventLog::default()
    }

    /// The recorded events, in emission order.
    pub fn events(&self) -> &[RouteEvent] {
        &self.events
    }

    /// Consumes the log, returning the recorded events.
    pub fn into_events(self) -> Vec<RouteEvent> {
        self.events
    }

    /// Number of recorded events whose [`kind_name`](RouteEvent::kind_name)
    /// equals `kind` (payloads are ignored).
    pub fn count_kind(&self, kind: &str) -> usize {
        self.events.iter().filter(|e| e.kind_name() == kind).count()
    }

    /// Replays every recorded event, in order, into `obs`.
    pub fn replay(&self, obs: &mut dyn RouteObserver) {
        for ev in &self.events {
            ev.replay(obs);
        }
    }
}

impl RouteObserver for EventLog {
    fn on_net_scheduled(&mut self, net: NetId) {
        self.events.push(RouteEvent::NetScheduled { net });
    }

    fn on_search_done(&mut self, net: NetId, kind: SearchKind, probe: SearchProbe) {
        self.events.push(RouteEvent::SearchDone { net, kind, probe });
    }

    fn on_weak_modification(&mut self, net: NetId, victim: NetId) {
        self.events.push(RouteEvent::WeakModification { net, victim });
    }

    fn on_strong_ripup(&mut self, net: NetId, victim: NetId, rip_count: u32) {
        self.events.push(RouteEvent::StrongRipup { net, victim, rip_count });
    }

    fn on_penalty_escalation(&mut self, victim: NetId, penalty: u64) {
        self.events.push(RouteEvent::PenaltyEscalation { victim, penalty });
    }

    fn on_net_committed(&mut self, net: NetId) {
        self.events.push(RouteEvent::NetCommitted { net });
    }

    fn on_net_failed(&mut self, net: NetId) {
        self.events.push(RouteEvent::NetFailed { net });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_records_in_order_and_replays() {
        let mut log = EventLog::new();
        log.on_net_scheduled(NetId(0));
        log.on_search_done(
            NetId(0),
            SearchKind::Hard,
            SearchProbe { expanded: 5, relaxed: 12, heap_peak: 4, found: true },
        );
        log.on_weak_modification(NetId(0), NetId(1));
        log.on_strong_ripup(NetId(0), NetId(1), 2);
        log.on_penalty_escalation(NetId(1), 32);
        log.on_net_committed(NetId(0));
        log.on_net_failed(NetId(1));
        assert_eq!(log.events().len(), 7);
        assert_eq!(log.count_kind("search_done"), 1);
        assert_eq!(log.count_kind("strong_ripup"), 1);

        let mut copy = EventLog::new();
        log.replay(&mut copy);
        assert_eq!(log, copy);
    }

    #[test]
    fn kind_names_are_stable() {
        let names: Vec<&str> = [
            RouteEvent::NetScheduled { net: NetId(0) },
            RouteEvent::SearchDone {
                net: NetId(0),
                kind: SearchKind::Soft,
                probe: SearchProbe::default(),
            },
            RouteEvent::WeakModification { net: NetId(0), victim: NetId(1) },
            RouteEvent::StrongRipup { net: NetId(0), victim: NetId(1), rip_count: 1 },
            RouteEvent::PenaltyEscalation { victim: NetId(1), penalty: 16 },
            RouteEvent::NetCommitted { net: NetId(0) },
            RouteEvent::NetFailed { net: NetId(0) },
        ]
        .iter()
        .map(RouteEvent::kind_name)
        .collect();
        assert_eq!(
            names,
            [
                "net_scheduled",
                "search_done",
                "weak_modification",
                "strong_ripup",
                "penalty_escalation",
                "net_committed",
                "net_failed"
            ]
        );
    }

    #[test]
    fn nop_observer_accepts_everything() {
        let mut nop = NopObserver;
        nop.on_net_scheduled(NetId(3));
        nop.on_penalty_escalation(NetId(3), u64::MAX);
    }
}
