use std::fmt;

use route_geom::{Layer, Point};

/// Dense identifier of a net within one [`Problem`](crate::Problem).
///
/// Net ids index directly into per-net vectors, so they are assigned
/// contiguously from zero by [`ProblemBuilder`](crate::ProblemBuilder).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NetId(pub u32);

impl NetId {
    /// Dense index of this net.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A terminal of a net: a grid cell on a specific layer that the net's
/// wiring must reach.
///
/// Pins may sit on the routing-region boundary (the common case for
/// channels and switchboxes) or anywhere inside it (pins of pre-placed
/// macro blocks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Pin {
    /// Grid cell of the terminal.
    pub at: Point,
    /// Layer on which the terminal is available.
    pub layer: Layer,
}

impl Pin {
    /// Creates a pin at `at` on `layer`.
    pub const fn new(at: Point, layer: Layer) -> Self {
        Pin { at, layer }
    }
}

impl fmt::Display for Pin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.at, self.layer)
    }
}

/// Side of a rectangular routing region, used to place boundary pins.
///
/// # Examples
///
/// ```
/// use route_model::PinSide;
/// use route_geom::Layer;
///
/// // Pins entering from the left arrive on the horizontal layer.
/// assert_eq!(PinSide::Left.natural_layer(), Layer::M1);
/// assert_eq!(PinSide::Top.natural_layer(), Layer::M2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PinSide {
    /// `x = 0` column; offset counts rows from the bottom.
    Left,
    /// `x = width - 1` column; offset counts rows from the bottom.
    Right,
    /// `y = height - 1` row; offset counts columns from the left.
    Top,
    /// `y = 0` row; offset counts columns from the left.
    Bottom,
}

impl PinSide {
    /// The layer a wire naturally enters on from this side in the
    /// reserved-layer model (horizontal from left/right, vertical from
    /// top/bottom).
    pub const fn natural_layer(self) -> Layer {
        match self {
            PinSide::Left | PinSide::Right => Layer::M1,
            PinSide::Top | PinSide::Bottom => Layer::M2,
        }
    }

    /// The boundary cell at `offset` along this side of a
    /// `width x height` region.
    pub const fn cell(self, width: u32, height: u32, offset: u32) -> Point {
        match self {
            PinSide::Left => Point::new(0, offset as i32),
            PinSide::Right => Point::new(width as i32 - 1, offset as i32),
            PinSide::Bottom => Point::new(offset as i32, 0),
            PinSide::Top => Point::new(offset as i32, height as i32 - 1),
        }
    }
}

/// A named collection of pins that must be electrically connected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Net {
    /// Identifier, dense within the owning problem.
    pub id: NetId,
    /// Human-readable name (unique within the problem).
    pub name: String,
    /// Terminals; at least one, duplicates removed.
    pub pins: Vec<Pin>,
}

impl Net {
    /// Number of point-to-tree connections needed to join all pins.
    ///
    /// A net with `p` pins needs `p - 1` connections (its routing tree has
    /// `p - 1` logical edges).
    pub fn connection_count(&self) -> usize {
        self.pins.len().saturating_sub(1)
    }
}

impl fmt::Display for Net {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} pins)", self.name, self.pins.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pin_side_cells() {
        assert_eq!(PinSide::Left.cell(8, 6, 2), Point::new(0, 2));
        assert_eq!(PinSide::Right.cell(8, 6, 2), Point::new(7, 2));
        assert_eq!(PinSide::Bottom.cell(8, 6, 3), Point::new(3, 0));
        assert_eq!(PinSide::Top.cell(8, 6, 3), Point::new(3, 5));
    }

    #[test]
    fn natural_layers() {
        assert_eq!(PinSide::Left.natural_layer(), Layer::M1);
        assert_eq!(PinSide::Right.natural_layer(), Layer::M1);
        assert_eq!(PinSide::Top.natural_layer(), Layer::M2);
        assert_eq!(PinSide::Bottom.natural_layer(), Layer::M2);
    }

    #[test]
    fn connection_count() {
        let net = Net {
            id: NetId(0),
            name: "x".into(),
            pins: vec![
                Pin::new(Point::new(0, 0), Layer::M1),
                Pin::new(Point::new(1, 0), Layer::M1),
                Pin::new(Point::new(2, 0), Layer::M1),
            ],
        };
        assert_eq!(net.connection_count(), 2);
        let single = Net {
            id: NetId(1),
            name: "y".into(),
            pins: vec![Pin::new(Point::new(0, 0), Layer::M1)],
        };
        assert_eq!(single.connection_count(), 0);
    }

    #[test]
    fn display_impls() {
        assert_eq!(NetId(3).to_string(), "n3");
        assert_eq!(Pin::new(Point::new(1, 2), Layer::M2).to_string(), "(1, 2)@M2");
    }
}
