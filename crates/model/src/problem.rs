use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use route_geom::{Layer, Point, Rect, Region};

use crate::{Grid, Net, NetId, Occupant, Pin, PinSide};

/// Error produced when a [`ProblemBuilder`] describes an invalid problem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProblemError {
    /// The routing region's bounding box must start at the origin.
    RegionNotAtOrigin,
    /// A net was declared with no pins.
    EmptyNet {
        /// Name of the offending net.
        net: String,
    },
    /// Two nets share a net name.
    DuplicateNetName {
        /// The repeated name.
        name: String,
    },
    /// A pin lies outside the grid.
    PinOutOfBounds {
        /// Owning net name.
        net: String,
        /// The offending pin.
        pin: Pin,
    },
    /// A pin lies outside the rectilinear routing region.
    PinOutsideRegion {
        /// Owning net name.
        net: String,
        /// The offending pin.
        pin: Pin,
    },
    /// A pin coincides with an obstacle on its layer.
    PinOnObstacle {
        /// Owning net name.
        net: String,
        /// The offending pin.
        pin: Pin,
    },
    /// Two different nets claim the same cell and layer as a pin.
    PinConflict {
        /// First net name.
        first: String,
        /// Second net name.
        second: String,
        /// The contested pin location.
        pin: Pin,
    },
    /// An obstacle lies outside the grid.
    ObstacleOutOfBounds {
        /// The offending cell.
        at: Point,
    },
    /// A pin sits on a layer the problem does not enable.
    PinOnDisabledLayer {
        /// Owning net name.
        net: String,
        /// The offending pin.
        pin: Pin,
    },
}

impl fmt::Display for ProblemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProblemError::RegionNotAtOrigin => {
                f.write_str("routing region bounding box must have its minimum corner at (0, 0)")
            }
            ProblemError::EmptyNet { net } => write!(f, "net `{net}` has no pins"),
            ProblemError::DuplicateNetName { name } => write!(f, "duplicate net name `{name}`"),
            ProblemError::PinOutOfBounds { net, pin } => {
                write!(f, "pin {pin} of net `{net}` is outside the grid")
            }
            ProblemError::PinOutsideRegion { net, pin } => {
                write!(f, "pin {pin} of net `{net}` is outside the routing region")
            }
            ProblemError::PinOnObstacle { net, pin } => {
                write!(f, "pin {pin} of net `{net}` coincides with an obstacle")
            }
            ProblemError::PinConflict { first, second, pin } => {
                write!(f, "nets `{first}` and `{second}` both claim pin location {pin}")
            }
            ProblemError::ObstacleOutOfBounds { at } => {
                write!(f, "obstacle at {at} is outside the grid")
            }
            ProblemError::PinOnDisabledLayer { net, pin } => {
                write!(f, "pin {pin} of net `{net}` is on a disabled layer")
            }
        }
    }
}

impl Error for ProblemError {}

/// An immutable, validated detailed-routing problem.
///
/// Construct one through [`ProblemBuilder`]; direct construction is not
/// exposed so that every `Problem` in existence has passed validation.
///
/// # Examples
///
/// ```
/// use route_model::{ProblemBuilder, PinSide};
///
/// let mut b = ProblemBuilder::switchbox(10, 8);
/// b.net("a").pin_side(PinSide::Left, 2).pin_side(PinSide::Right, 6);
/// b.net("b").pin_side(PinSide::Top, 4).pin_side(PinSide::Bottom, 4);
/// let p = b.build()?;
/// assert_eq!(p.nets().len(), 2);
/// # Ok::<(), route_model::ProblemError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Problem {
    width: u32,
    height: u32,
    layers: u8,
    region: Option<Region>,
    obstacles: Vec<(Point, Option<Layer>)>,
    nets: Vec<Net>,
}

impl Problem {
    /// Number of grid columns.
    #[inline]
    pub const fn width(&self) -> u32 {
        self.width
    }

    /// Number of grid rows.
    #[inline]
    pub const fn height(&self) -> u32 {
        self.height
    }

    /// Number of enabled routing layers (2 or 3). Layers above the count
    /// are blocked everywhere.
    #[inline]
    pub const fn layers(&self) -> u8 {
        self.layers
    }

    /// The rectilinear routing region, if the area is not the full grid.
    pub fn region(&self) -> Option<&Region> {
        self.region.as_ref()
    }

    /// Obstacle cells; `None` layer means the obstacle blocks both layers.
    pub fn obstacles(&self) -> &[(Point, Option<Layer>)] {
        &self.obstacles
    }

    /// All nets, indexed by [`NetId`].
    pub fn nets(&self) -> &[Net] {
        &self.nets
    }

    /// The net with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this problem.
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.index()]
    }

    /// Looks up a net by name.
    pub fn net_by_name(&self, name: &str) -> Option<&Net> {
        self.nets.iter().find(|n| n.name == name)
    }

    /// Whether `p` is inside the usable routing area (region membership;
    /// obstacles are separate).
    pub fn in_region(&self, p: Point) -> bool {
        let in_grid =
            p.x >= 0 && p.y >= 0 && (p.x as u32) < self.width && (p.y as u32) < self.height;
        in_grid && self.region.as_ref().is_none_or(|r| r.contains(p))
    }

    /// Builds the base occupancy grid: region exterior and obstacles
    /// blocked, everything else free. Pins are **not** marked here — see
    /// [`RouteDb::new`](crate::RouteDb::new).
    pub fn base_grid(&self) -> Grid {
        let mut grid = Grid::new(self.width, self.height);
        // Layers beyond the enabled count are blocked everywhere.
        for layer in Layer::ALL.into_iter().skip(self.layers as usize) {
            for p in grid.bounds().cells() {
                grid.set_occupant(p, layer, Occupant::Blocked);
            }
        }
        if let Some(region) = &self.region {
            for p in grid.bounds().cells() {
                if !region.contains(p) {
                    for layer in Layer::ALL {
                        grid.set_occupant(p, layer, Occupant::Blocked);
                    }
                }
            }
        }
        for &(p, layer) in &self.obstacles {
            match layer {
                Some(l) => grid.set_occupant(p, l, Occupant::Blocked),
                None => {
                    for l in Layer::ALL {
                        grid.set_occupant(p, l, Occupant::Blocked);
                    }
                }
            }
        }
        grid
    }

    /// Total number of pins across all nets.
    pub fn pin_count(&self) -> usize {
        self.nets.iter().map(|n| n.pins.len()).sum()
    }

    /// Sum of `pins - 1` over all nets: the number of point-to-tree
    /// connections any complete routing must realise.
    pub fn connection_count(&self) -> usize {
        self.nets.iter().map(Net::connection_count).sum()
    }

    /// A crude congestion measure: total Manhattan half-perimeter of the
    /// nets' pin bounding boxes divided by the free routing capacity.
    pub fn utilization_estimate(&self) -> f64 {
        let demand: u64 = self
            .nets
            .iter()
            .filter(|n| n.pins.len() >= 2)
            .map(|n| {
                let first = n.pins[0].at;
                let bbox =
                    n.pins.iter().fold(Rect::cell(first), |acc, p| acc.union(&Rect::cell(p.at)));
                (bbox.width() + bbox.height()) as u64
            })
            .sum();
        let capacity = self.base_grid().free_slots() as f64;
        demand as f64 / capacity.max(1.0)
    }
}

/// Builder for [`Problem`] values.
///
/// See the [crate docs](crate) for a complete example.
#[derive(Debug, Clone)]
pub struct ProblemBuilder {
    width: u32,
    height: u32,
    layers: u8,
    region: Option<Region>,
    obstacles: Vec<(Point, Option<Layer>)>,
    nets: Vec<(String, Vec<Pin>)>,
}

impl ProblemBuilder {
    /// Starts a rectangular `width x height` switchbox problem.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn switchbox(width: u32, height: u32) -> Self {
        assert!(width > 0 && height > 0, "problem dimensions must be non-zero");
        ProblemBuilder {
            width,
            height,
            layers: 2,
            region: None,
            obstacles: Vec::new(),
            nets: Vec::new(),
        }
    }

    /// Starts a problem over an irregular rectilinear region.
    ///
    /// The grid is sized to the region's bounding box; cells outside the
    /// region are blocked.
    pub fn region(region: Region) -> Self {
        let b = region.bounds();
        ProblemBuilder {
            width: b.width(),
            height: b.height(),
            layers: 2,
            region: Some(region),
            obstacles: Vec::new(),
            nets: Vec::new(),
        }
    }

    /// Sets the number of enabled routing layers (2 or 3; default 2).
    /// In the three-layer (HVH) model, M3 is a second horizontal layer.
    ///
    /// # Panics
    ///
    /// Panics unless `layers` is 2 or 3.
    pub fn layers(&mut self, layers: u8) -> &mut Self {
        assert!((2..=route_geom::NUM_LAYERS as u8).contains(&layers), "layer count must be 2 or 3");
        self.layers = layers;
        self
    }

    /// Grid width of the problem under construction.
    pub const fn width(&self) -> u32 {
        self.width
    }

    /// Grid height of the problem under construction.
    pub const fn height(&self) -> u32 {
        self.height
    }

    /// Blocks a single cell on both layers.
    pub fn obstacle(&mut self, at: Point) -> &mut Self {
        self.obstacles.push((at, None));
        self
    }

    /// Blocks a single cell on one layer only.
    pub fn obstacle_on(&mut self, at: Point, layer: Layer) -> &mut Self {
        self.obstacles.push((at, Some(layer)));
        self
    }

    /// Blocks every cell of a rectangle on both layers.
    pub fn obstacle_rect(&mut self, rect: Rect) -> &mut Self {
        for p in rect.cells() {
            self.obstacles.push((p, None));
        }
        self
    }

    /// Declares a new net and returns a handle for adding its pins.
    pub fn net(&mut self, name: impl Into<String>) -> NetBuilder<'_> {
        self.nets.push((name.into(), Vec::new()));
        let idx = self.nets.len() - 1;
        NetBuilder { builder: self, idx }
    }

    /// Validates and freezes the problem.
    ///
    /// # Errors
    ///
    /// Returns a [`ProblemError`] if the region does not start at the
    /// origin, any net is empty or duplicated, any pin or obstacle is out
    /// of bounds, a pin is unreachable (outside the region or under an
    /// obstacle), or two nets claim the same pin slot.
    pub fn build(self) -> Result<Problem, ProblemError> {
        if let Some(region) = &self.region {
            if region.bounds().min() != Point::new(0, 0) {
                return Err(ProblemError::RegionNotAtOrigin);
            }
        }
        let in_grid = |p: Point| {
            p.x >= 0 && p.y >= 0 && (p.x as u32) < self.width && (p.y as u32) < self.height
        };
        for &(p, _) in &self.obstacles {
            if !in_grid(p) {
                return Err(ProblemError::ObstacleOutOfBounds { at: p });
            }
        }
        let blocked = |pin: &Pin| {
            self.obstacles.iter().any(|&(p, l)| p == pin.at && l.is_none_or(|l| l == pin.layer))
        };

        let mut names: HashMap<&str, ()> = HashMap::new();
        let mut claimed: HashMap<(Point, Layer), usize> = HashMap::new();
        let mut nets = Vec::with_capacity(self.nets.len());
        for (idx, (name, pins)) in self.nets.iter().enumerate() {
            if names.insert(name, ()).is_some() {
                return Err(ProblemError::DuplicateNetName { name: name.clone() });
            }
            let mut unique: Vec<Pin> = Vec::with_capacity(pins.len());
            for &pin in pins {
                if !in_grid(pin.at) {
                    return Err(ProblemError::PinOutOfBounds { net: name.clone(), pin });
                }
                if pin.layer.index() >= self.layers as usize {
                    return Err(ProblemError::PinOnDisabledLayer { net: name.clone(), pin });
                }
                if let Some(region) = &self.region {
                    if !region.contains(pin.at) {
                        return Err(ProblemError::PinOutsideRegion { net: name.clone(), pin });
                    }
                }
                if blocked(&pin) {
                    return Err(ProblemError::PinOnObstacle { net: name.clone(), pin });
                }
                if let Some(&other) = claimed.get(&(pin.at, pin.layer)) {
                    if other != idx {
                        return Err(ProblemError::PinConflict {
                            first: self.nets[other].0.clone(),
                            second: name.clone(),
                            pin,
                        });
                    }
                    continue; // duplicate pin of the same net: drop it
                }
                claimed.insert((pin.at, pin.layer), idx);
                unique.push(pin);
            }
            if unique.is_empty() {
                return Err(ProblemError::EmptyNet { net: name.clone() });
            }
            nets.push(Net { id: NetId(idx as u32), name: name.clone(), pins: unique });
        }

        Ok(Problem {
            width: self.width,
            height: self.height,
            layers: self.layers,
            region: self.region,
            obstacles: self.obstacles,
            nets,
        })
    }
}

/// Handle returned by [`ProblemBuilder::net`] for adding pins to one net.
#[derive(Debug)]
pub struct NetBuilder<'a> {
    builder: &'a mut ProblemBuilder,
    idx: usize,
}

impl NetBuilder<'_> {
    /// Adds a boundary pin at `offset` along `side`, on that side's
    /// natural entry layer.
    pub fn pin_side(&mut self, side: PinSide, offset: u32) -> &mut Self {
        self.pin_side_on(side, offset, side.natural_layer())
    }

    /// Adds a boundary pin at `offset` along `side` on an explicit layer.
    pub fn pin_side_on(&mut self, side: PinSide, offset: u32, layer: Layer) -> &mut Self {
        let at = side.cell(self.builder.width, self.builder.height, offset);
        self.pin_at(at, layer)
    }

    /// Adds a pin anywhere on the grid (e.g. an interior macro terminal).
    pub fn pin_at(&mut self, at: Point, layer: Layer) -> &mut Self {
        self.builder.nets[self.idx].1.push(Pin::new(at, layer));
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use route_geom::Rect;

    fn two_net_builder() -> ProblemBuilder {
        let mut b = ProblemBuilder::switchbox(10, 8);
        b.net("a").pin_side(PinSide::Left, 2).pin_side(PinSide::Right, 6);
        b.net("b").pin_side(PinSide::Top, 4).pin_side(PinSide::Bottom, 4);
        b
    }

    #[test]
    fn build_valid_problem() {
        let p = two_net_builder().build().unwrap();
        assert_eq!(p.nets().len(), 2);
        assert_eq!(p.pin_count(), 4);
        assert_eq!(p.connection_count(), 2);
        assert_eq!(p.net_by_name("a").unwrap().id, NetId(0));
        assert!(p.net_by_name("zz").is_none());
    }

    #[test]
    fn pins_land_on_expected_cells() {
        let p = two_net_builder().build().unwrap();
        let a = p.net(NetId(0));
        assert_eq!(a.pins[0].at, Point::new(0, 2));
        assert_eq!(a.pins[1].at, Point::new(9, 6));
        let b = p.net(NetId(1));
        assert_eq!(b.pins[0].at, Point::new(4, 7));
        assert_eq!(b.pins[1].at, Point::new(4, 0));
    }

    #[test]
    fn empty_net_rejected() {
        let mut b = ProblemBuilder::switchbox(4, 4);
        b.net("void");
        assert_eq!(b.build(), Err(ProblemError::EmptyNet { net: "void".into() }));
    }

    #[test]
    fn duplicate_name_rejected() {
        let mut b = ProblemBuilder::switchbox(4, 4);
        b.net("x").pin_at(Point::new(0, 0), Layer::M1);
        b.net("x").pin_at(Point::new(1, 1), Layer::M1);
        assert!(matches!(b.build(), Err(ProblemError::DuplicateNetName { .. })));
    }

    #[test]
    fn out_of_bounds_pin_rejected() {
        let mut b = ProblemBuilder::switchbox(4, 4);
        b.net("x").pin_at(Point::new(4, 0), Layer::M1);
        assert!(matches!(b.build(), Err(ProblemError::PinOutOfBounds { .. })));
    }

    #[test]
    fn pin_conflict_rejected() {
        let mut b = ProblemBuilder::switchbox(4, 4);
        b.net("x").pin_at(Point::new(1, 1), Layer::M1);
        b.net("y").pin_at(Point::new(1, 1), Layer::M1);
        assert!(matches!(b.build(), Err(ProblemError::PinConflict { .. })));
    }

    #[test]
    fn same_cell_different_layer_is_fine() {
        let mut b = ProblemBuilder::switchbox(4, 4);
        b.net("x").pin_at(Point::new(1, 1), Layer::M1).pin_at(Point::new(0, 0), Layer::M1);
        b.net("y").pin_at(Point::new(1, 1), Layer::M2).pin_at(Point::new(2, 2), Layer::M1);
        assert!(b.build().is_ok());
    }

    #[test]
    fn duplicate_pin_of_same_net_deduped() {
        let mut b = ProblemBuilder::switchbox(4, 4);
        b.net("x")
            .pin_at(Point::new(1, 1), Layer::M1)
            .pin_at(Point::new(1, 1), Layer::M1)
            .pin_at(Point::new(2, 2), Layer::M1);
        let p = b.build().unwrap();
        assert_eq!(p.net(NetId(0)).pins.len(), 2);
    }

    #[test]
    fn pin_on_obstacle_rejected() {
        let mut b = ProblemBuilder::switchbox(4, 4);
        b.obstacle(Point::new(1, 1));
        b.net("x").pin_at(Point::new(1, 1), Layer::M1);
        assert!(matches!(b.build(), Err(ProblemError::PinOnObstacle { .. })));
    }

    #[test]
    fn pin_on_other_layer_of_single_layer_obstacle_ok() {
        let mut b = ProblemBuilder::switchbox(4, 4);
        b.obstacle_on(Point::new(1, 1), Layer::M2);
        b.net("x").pin_at(Point::new(1, 1), Layer::M1);
        assert!(b.build().is_ok());
    }

    #[test]
    fn obstacle_out_of_bounds_rejected() {
        let mut b = ProblemBuilder::switchbox(4, 4);
        b.obstacle(Point::new(9, 9));
        b.net("x").pin_at(Point::new(0, 0), Layer::M1);
        assert!(matches!(b.build(), Err(ProblemError::ObstacleOutOfBounds { .. })));
    }

    #[test]
    fn base_grid_blocks_obstacles_and_region() {
        let region = Region::from_rects([
            Rect::with_size(Point::new(0, 0), 6, 2),
            Rect::with_size(Point::new(0, 0), 2, 6),
        ]);
        let mut b = ProblemBuilder::region(region);
        b.obstacle(Point::new(3, 0));
        b.net("x").pin_at(Point::new(0, 0), Layer::M1);
        let p = b.build().unwrap();
        let g = p.base_grid();
        assert_eq!(g.occupant(Point::new(5, 5), Layer::M1), Occupant::Blocked); // outside L
        assert_eq!(g.occupant(Point::new(3, 0), Layer::M1), Occupant::Blocked); // obstacle
        assert_eq!(g.occupant(Point::new(0, 5), Layer::M1), Occupant::Free);
        assert!(p.in_region(Point::new(0, 5)));
        assert!(!p.in_region(Point::new(5, 5)));
    }

    #[test]
    fn region_must_start_at_origin() {
        let region = Region::rect(Rect::with_size(Point::new(2, 2), 4, 4));
        let b = ProblemBuilder::region(region);
        assert_eq!(b.build(), Err(ProblemError::RegionNotAtOrigin));
    }

    #[test]
    fn utilization_estimate_scales_with_demand() {
        let sparse = two_net_builder().build().unwrap();
        let mut b = ProblemBuilder::switchbox(10, 8);
        for i in 0..6 {
            b.net(format!("n{i}")).pin_side(PinSide::Left, i).pin_side(PinSide::Right, i);
        }
        let dense = b.build().unwrap();
        assert!(dense.utilization_estimate() > sparse.utilization_estimate());
    }

    #[test]
    fn error_display_messages() {
        let e = ProblemError::EmptyNet { net: "a".into() };
        assert_eq!(e.to_string(), "net `a` has no pins");
        let e = ProblemError::RegionNotAtOrigin;
        assert!(e.to_string().contains("(0, 0)"));
    }
}
