use std::fmt::Write as _;

use route_geom::{Layer, Point};

use crate::{Occupant, RouteDb};

/// Pixel size of one grid cell in the SVG output.
const CELL: i32 = 16;

/// Categorical wire colors, cycled by net index.
const PALETTE: [&str; 10] = [
    "#4269d0", "#efb118", "#ff725c", "#6cc5b0", "#3ca951", "#ff8ab7", "#a463f2", "#97bbf5",
    "#9c6b4e", "#9498a0",
];

/// Renders the routing database as a standalone SVG document: M1 wiring
/// as horizontal-leaning strokes, M2 wiring as vertical-leaning strokes
/// on the same canvas at reduced opacity, vias as rings, obstacles as
/// hatched cells, and pins as filled squares.
///
/// Intended for visual inspection of results (the CLI's `--svg` flag
/// writes this) — not a stable interchange format.
///
/// # Examples
///
/// ```
/// use route_model::{render_svg, ProblemBuilder, PinSide, RouteDb};
///
/// let mut b = ProblemBuilder::switchbox(4, 3);
/// b.net("a").pin_side(PinSide::Left, 1).pin_side(PinSide::Right, 1);
/// let problem = b.build()?;
/// let svg = render_svg(&RouteDb::new(&problem));
/// assert!(svg.starts_with("<svg"));
/// assert!(svg.ends_with("</svg>\n"));
/// # Ok::<(), route_model::ProblemError>(())
/// ```
pub fn render_svg(db: &RouteDb) -> String {
    let grid = db.grid();
    let (w, h) = (grid.width() as i32, grid.height() as i32);
    let (px_w, px_h) = (w * CELL, h * CELL);
    // Grid y grows north; SVG y grows down. Flip rows.
    let cx = |p: Point| p.x * CELL + CELL / 2;
    let cy = |p: Point| (h - 1 - p.y) * CELL + CELL / 2;
    let color = |net: crate::NetId| PALETTE[net.index() % PALETTE.len()];

    let mut out = String::new();
    let _ = writeln!(
        out,
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{px_w}\" height=\"{px_h}\" \
         viewBox=\"0 0 {px_w} {px_h}\">"
    );
    let _ = writeln!(out, "<rect width=\"{px_w}\" height=\"{px_h}\" fill=\"#ffffff\"/>");

    // Faint grid lines.
    for x in 0..=w {
        let _ = writeln!(
            out,
            "<line x1=\"{0}\" y1=\"0\" x2=\"{0}\" y2=\"{px_h}\" stroke=\"#eeeeee\"/>",
            x * CELL
        );
    }
    for y in 0..=h {
        let _ = writeln!(
            out,
            "<line x1=\"0\" y1=\"{0}\" x2=\"{px_w}\" y2=\"{0}\" stroke=\"#eeeeee\"/>",
            y * CELL
        );
    }

    // Obstacles (blocked on either layer).
    for p in grid.points() {
        let blocked = Layer::ALL.iter().any(|&l| grid.occupant(p, l) == Occupant::Blocked);
        if blocked {
            let _ = writeln!(
                out,
                "<rect x=\"{}\" y=\"{}\" width=\"{CELL}\" height=\"{CELL}\" fill=\"#d8d8d8\"/>",
                p.x * CELL,
                (h - 1 - p.y) * CELL
            );
        }
    }

    // Wiring: draw each trace as a polyline per layer run.
    for net_idx in 0..db.net_count() {
        let net = crate::NetId(net_idx as u32);
        let stroke = color(net);
        for (_, trace) in db.traces(net) {
            // Split the trace into same-layer runs.
            let mut run: Vec<Point> = Vec::new();
            let mut run_layer = trace.steps()[0].layer;
            let flush = |run: &mut Vec<Point>, layer: Layer, out: &mut String| {
                if run.len() >= 2 {
                    let pts: Vec<String> =
                        run.iter().map(|p| format!("{},{}", cx(*p), cy(*p))).collect();
                    let (width, opacity) = match layer {
                        Layer::M1 => (CELL / 3, "1.0"),
                        Layer::M2 => (CELL / 4, "0.75"),
                        Layer::M3 => (CELL / 5, "0.6"),
                    };
                    let _ = writeln!(
                        out,
                        "<polyline points=\"{}\" fill=\"none\" stroke=\"{stroke}\" \
                         stroke-width=\"{width}\" stroke-opacity=\"{opacity}\" \
                         stroke-linecap=\"round\" stroke-linejoin=\"round\"/>",
                        pts.join(" ")
                    );
                }
                run.clear();
            };
            for step in trace.steps() {
                if step.layer != run_layer {
                    flush(&mut run, run_layer, &mut out);
                    run_layer = step.layer;
                    run.push(step.at);
                } else {
                    run.push(step.at);
                }
            }
            flush(&mut run, run_layer, &mut out);
            // Vias as rings.
            for (p, _lower) in trace.via_points() {
                let _ = writeln!(
                    out,
                    "<circle cx=\"{}\" cy=\"{}\" r=\"{}\" fill=\"#ffffff\" \
                     stroke=\"{stroke}\" stroke-width=\"2\"/>",
                    cx(p),
                    cy(p),
                    CELL / 4
                );
            }
        }
        // Pins as filled squares.
        for pin in db.pins(net) {
            let s = CELL / 2;
            let _ = writeln!(
                out,
                "<rect x=\"{}\" y=\"{}\" width=\"{s}\" height=\"{s}\" fill=\"{stroke}\"/>",
                cx(pin.at) - s / 2,
                cy(pin.at) - s / 2
            );
        }
    }
    out.push_str("</svg>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PinSide, ProblemBuilder, Step, Trace};

    #[test]
    fn svg_contains_expected_elements() {
        let mut b = ProblemBuilder::switchbox(5, 4);
        b.obstacle(Point::new(2, 2));
        b.net("a").pin_side(PinSide::Left, 1).pin_side(PinSide::Right, 1);
        let p = b.build().unwrap();
        let net = p.nets()[0].id;
        let mut db = RouteDb::new(&p);
        let mut steps: Vec<Step> = (0..3).map(|x| Step::new(Point::new(x, 1), Layer::M1)).collect();
        steps.push(Step::new(Point::new(2, 1), Layer::M2));
        steps.push(Step::new(Point::new(2, 0), Layer::M2));
        db.commit(net, Trace::from_steps(steps).unwrap()).unwrap();

        let svg = render_svg(&db);
        assert!(svg.starts_with("<svg"));
        assert!(svg.contains("<polyline"), "wire runs rendered");
        assert!(svg.contains("<circle"), "via rendered");
        assert!(svg.contains("fill=\"#d8d8d8\""), "obstacle rendered");
        assert_eq!(svg.matches("</svg>").count(), 1);
    }

    #[test]
    fn svg_dimensions_scale_with_grid() {
        let mut b = ProblemBuilder::switchbox(7, 3);
        b.net("a").pin_side(PinSide::Left, 0).pin_side(PinSide::Right, 0);
        let p = b.build().unwrap();
        let svg = render_svg(&RouteDb::new(&p));
        assert!(svg.contains(&format!("width=\"{}\"", 7 * CELL)));
        assert!(svg.contains(&format!("height=\"{}\"", 3 * CELL)));
    }
}
