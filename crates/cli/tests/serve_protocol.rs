//! Socket-level tests for `vroute serve`: the daemon is started
//! through the real CLI entry point and driven over a unix socket with
//! raw protocol lines, so these tests cover the transport, the
//! envelope, and the service together.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use route_cli::{execute, parse_args};
use route_proto::Json;

/// Runs a command line through the CLI library, returning its report.
fn run(line: &str) -> String {
    let cmd = parse_args(line.split_whitespace().map(str::to_owned)).expect("parses");
    let mut out = String::new();
    execute(&cmd, &mut out).expect("executes");
    out
}

/// Starts the daemon on its own thread; join after a shutdown request.
fn start_serve(args: &str) -> JoinHandle<(bool, String)> {
    let args = args.to_owned();
    std::thread::spawn(move || {
        let cmd = parse_args(args.split_whitespace().map(str::to_owned)).expect("parses");
        let mut out = String::new();
        let ok = execute(&cmd, &mut out).expect("serve runs");
        (ok, out)
    })
}

/// Connects to the daemon's socket, waiting for it to come up.
fn connect(socket: &Path) -> UnixStream {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match UnixStream::connect(socket) {
            Ok(stream) => return stream,
            Err(e) => {
                assert!(Instant::now() < deadline, "daemon never bound {socket:?}: {e}");
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

/// Sends one raw line and returns the next line from the server.
fn roundtrip(stream: &mut UnixStream, reader: &mut BufReader<UnixStream>, line: &str) -> Json {
    stream.write_all(line.as_bytes()).expect("send");
    stream.write_all(b"\n").expect("send newline");
    read_line(reader)
}

fn read_line(reader: &mut BufReader<UnixStream>) -> Json {
    let mut line = String::new();
    let n = reader.read_line(&mut line).expect("read");
    assert!(n > 0, "server closed the connection");
    Json::parse(line.trim_end()).expect("server line parses")
}

fn session(stream: &UnixStream) -> BufReader<UnixStream> {
    BufReader::new(stream.try_clone().expect("clone"))
}

/// A fresh test directory with a short socket path (unix socket paths
/// are length-limited, so temp_dir + short names).
fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("creating test dir");
    dir
}

/// Generates one routable instance and returns (path, text).
fn instance(dir: &Path, name: &str, seed: u32) -> (String, String) {
    let text = run(&format!("gen switchbox --width 10 --height 8 --nets 5 --seed {seed}"));
    let path = dir.join(name);
    std::fs::write(&path, &text).expect("writing instance");
    (path.display().to_string(), text)
}

/// Encodes a minimal route request by hand so the tests exercise the
/// documented wire format, not just the encoder.
fn route_line(id: &str, instance_text: &str, extra: &str) -> String {
    let escaped = Json::str(instance_text).render_compact();
    format!("{{\"v\":1,\"op\":\"route\",\"id\":\"{id}\",\"instance\":{escaped}{extra}}}")
}

#[test]
fn serve_routes_match_batch_byte_for_byte() {
    let dir = test_dir("vroute-serve-parity");
    let socket = dir.join("s.sock");
    let mut paths = Vec::new();
    let mut texts = Vec::new();
    for (i, seed) in [3u32, 7, 11].iter().enumerate() {
        let (path, text) = instance(&dir, &format!("i{i}.sb"), *seed);
        paths.push(path);
        texts.push(text);
    }

    // Ground truth: the batch engine's per-instance checksums.
    let report = dir.join("batch.json");
    run(&format!("batch {} --jobs 1 --json {}", paths.join(" "), report.display()));
    let batch =
        Json::parse(&std::fs::read_to_string(&report).expect("report")).expect("batch json parses");
    let batch_sums: Vec<String> = match batch.get("instances") {
        Some(Json::Arr(records)) => records
            .iter()
            .map(|r| r.get("checksum").and_then(Json::as_str).expect("checksum").to_string())
            .collect(),
        _ => panic!("no instances in {batch:?}"),
    };

    let daemon = start_serve(&format!("serve --socket {} --workers 2", socket.display()));
    let mut stream = connect(&socket);
    let mut reader = session(&stream);
    for (i, text) in texts.iter().enumerate() {
        let resp = roundtrip(&mut stream, &mut reader, &route_line(&format!("r{i}"), text, ""));
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true), "{resp:?}");
        assert_eq!(resp.get("id").and_then(Json::as_str), Some(format!("r{i}").as_str()));
        let result = resp.get("result").expect("result");
        assert_eq!(result.get("status").and_then(Json::as_str), Some("complete"), "{resp:?}");
        assert_eq!(
            result.get("checksum").and_then(Json::as_str),
            Some(batch_sums[i].as_str()),
            "serve and batch disagree on instance {i}"
        );
    }
    let resp = roundtrip(&mut stream, &mut reader, r#"{"v":1,"op":"shutdown","id":"bye"}"#);
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
    let (ok, out) = daemon.join().expect("daemon thread");
    assert!(ok, "{out}");
    assert!(out.contains("3 completed") || out.contains("completed"), "{out}");
}

#[test]
fn malformed_input_gets_structured_errors_not_disconnects() {
    let dir = test_dir("vroute-serve-malformed");
    let socket = dir.join("s.sock");
    let daemon = start_serve(&format!("serve --socket {} --workers 1", socket.display()));
    let mut stream = connect(&socket);
    let mut reader = session(&stream);

    let cases = [
        ("{\"v\":1,\"op\":", "bad-json"),
        ("{\"v\":2,\"op\":\"ping\"}", "bad-version"),
        ("{\"v\":1,\"op\":\"frobnicate\"}", "unknown-op"),
        ("{\"v\":1,\"op\":\"route\"}", "bad-request"),
        ("{\"v\":1,\"op\":\"route\",\"instance\":\"not an instance\"}", "bad-request"),
        ("{\"v\":1,\"op\":\"route\",\"instance\":\"sb 4 4\",\"router\":\"nope\"}", "bad-request"),
        ("{\"v\":1,\"op\":\"route\",\"instance\":\"sb 4 4\",\"priority\":99}", "bad-request"),
    ];
    for (line, code) in cases {
        let resp = roundtrip(&mut stream, &mut reader, line);
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(false), "{line} -> {resp:?}");
        assert_eq!(
            resp.get("error").and_then(|e| e.get("code")).and_then(Json::as_str),
            Some(code),
            "{line} -> {resp:?}"
        );
        // The connection must survive every malformed line.
        let pong = roundtrip(&mut stream, &mut reader, "{\"v\":1,\"op\":\"ping\",\"id\":\"p\"}");
        assert_eq!(pong.get("ok").and_then(Json::as_bool), Some(true), "{pong:?}");
    }

    // An oversized line is discarded and flagged, and the connection
    // still works afterwards.
    let huge = format!("{{\"v\":1,\"op\":\"route\",\"instance\":\"{}\"}}", "x".repeat(1 << 20));
    let resp = roundtrip(&mut stream, &mut reader, &huge);
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(
        resp.get("error").and_then(|e| e.get("code")).and_then(Json::as_str),
        Some("oversized"),
        "{resp:?}"
    );
    let pong = roundtrip(&mut stream, &mut reader, "{\"v\":1,\"op\":\"ping\",\"id\":\"after\"}");
    assert_eq!(pong.get("ok").and_then(Json::as_bool), Some(true), "{pong:?}");

    roundtrip(&mut stream, &mut reader, r#"{"v":1,"op":"shutdown"}"#);
    let (ok, out) = daemon.join().expect("daemon thread");
    assert!(ok, "{out}");
}

#[test]
fn events_stream_before_the_response_and_deadlines_expire() {
    let dir = test_dir("vroute-serve-events");
    let socket = dir.join("s.sock");
    let (_, text) = instance(&dir, "i.sb", 5);
    let daemon = start_serve(&format!("serve --socket {} --workers 1", socket.display()));
    let mut stream = connect(&socket);
    let mut reader = session(&stream);

    // Subscribe to events: every line before the terminal response is
    // an event envelope carrying the request id.
    stream
        .write_all(route_line("ev", &text, ",\"events\":true").as_bytes())
        .and_then(|()| stream.write_all(b"\n"))
        .expect("send");
    let mut events = 0u64;
    let resp = loop {
        let line = read_line(&mut reader);
        if line.get("ev").is_some() {
            assert_eq!(line.get("id").and_then(Json::as_str), Some("ev"), "{line:?}");
            events += 1;
            continue;
        }
        break line;
    };
    assert!(events >= 5, "expected one event per net at least, got {events}");
    let result = resp.get("result").expect("result");
    assert_eq!(result.get("status").and_then(Json::as_str), Some("complete"), "{resp:?}");
    assert_eq!(result.get("events").and_then(Json::as_u64), Some(events), "{resp:?}");

    // A zero deadline expires before routing: still ok:true (the
    // request was valid), with the error in the outcome report.
    let resp = roundtrip(&mut stream, &mut reader, &route_line("dl", &text, ",\"deadline_ms\":0"));
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true), "{resp:?}");
    let result = resp.get("result").expect("result");
    assert_eq!(result.get("status").and_then(Json::as_str), Some("error"), "{resp:?}");
    assert!(
        result.get("error").and_then(Json::as_str).expect("error").contains("deadline"),
        "{resp:?}"
    );

    roundtrip(&mut stream, &mut reader, r#"{"v":1,"op":"shutdown"}"#);
    let (ok, out) = daemon.join().expect("daemon thread");
    assert!(ok, "{out}");
    assert!(out.contains("1 expired"), "{out}");
}

#[test]
fn stats_op_reports_the_service_counters() {
    let dir = test_dir("vroute-serve-stats");
    let socket = dir.join("s.sock");
    let (_, text) = instance(&dir, "i.sb", 9);
    let daemon = start_serve(&format!("serve --socket {} --workers 1 --queue 7", socket.display()));
    let mut stream = connect(&socket);
    let mut reader = session(&stream);

    roundtrip(&mut stream, &mut reader, &route_line("r", &text, ""));
    // The worker counts a job completed just after delivering its
    // reply, so poll the counter instead of racing it.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let resp = roundtrip(&mut stream, &mut reader, r#"{"v":1,"op":"stats","id":"s"}"#);
        let result = resp.get("result").expect("result");
        assert_eq!(result.get("queue_capacity").and_then(Json::as_u64), Some(7), "{resp:?}");
        assert_eq!(result.get("workers").and_then(Json::as_u64), Some(1), "{resp:?}");
        assert_eq!(result.get("accepted").and_then(Json::as_u64), Some(1), "{resp:?}");
        if result.get("completed").and_then(Json::as_u64) == Some(1) {
            break;
        }
        assert!(Instant::now() < deadline, "completed never reached 1: {resp:?}");
        std::thread::sleep(Duration::from_millis(10));
    }

    roundtrip(&mut stream, &mut reader, r#"{"v":1,"op":"shutdown"}"#);
    daemon.join().expect("daemon thread");
}

#[test]
fn client_command_drives_the_daemon_end_to_end() {
    let dir = test_dir("vroute-serve-client");
    let socket = dir.join("s.sock");
    let (path, _) = instance(&dir, "i.sb", 13);
    let daemon = start_serve(&format!("serve --socket {} --workers 1", socket.display()));
    connect(&socket); // wait for bind before pointing the client at it

    let out = run(&format!("client --socket {} {} --events --shutdown", socket.display(), path));
    assert!(out.contains("complete"), "{out}");
    assert!(out.contains("checksum"), "{out}");
    assert!(out.contains("events)"), "{out}");
    assert!(out.contains("daemon stopping"), "{out}");
    let (ok, serve_out) = daemon.join().expect("daemon thread");
    assert!(ok, "{serve_out}");
}

#[test]
fn journaled_requests_replay_after_a_crash() {
    let dir = test_dir("vroute-serve-replay");
    let socket = dir.join("s.sock");
    let jdir = dir.join("wal");
    std::fs::create_dir_all(&jdir).expect("journal dir");
    let (_, text) = instance(&dir, "i.sb", 17);

    // Simulate a daemon that accepted two requests and died after
    // answering only the first: journal them directly.
    {
        let journal = mighty::ServeJournal::create(&jdir).expect("create journal");
        let first = route_line("a", &text, "");
        let second = route_line("b", &text, "");
        let rid = journal.accept(&first);
        journal.done(rid, "complete");
        journal.accept(&second);
        assert!(journal.take_error().is_none());
    }

    // A resumed daemon replays the unanswered request before serving.
    let daemon = start_serve(&format!(
        "serve --socket {} --workers 1 --journal {} --resume",
        socket.display(),
        jdir.display()
    ));
    let mut stream = connect(&socket);
    let mut reader = session(&stream);
    roundtrip(&mut stream, &mut reader, r#"{"v":1,"op":"shutdown"}"#);
    let (ok, out) = daemon.join().expect("daemon thread");
    assert!(ok, "{out}");
    assert!(out.contains("replaying 1 journaled request(s)"), "{out}");

    // After the replay the journal holds no pending work.
    let (_, pending) = mighty::ServeJournal::resume(&jdir).expect("resume");
    assert!(pending.is_empty(), "replayed requests must be marked done: {pending:?}");
}
