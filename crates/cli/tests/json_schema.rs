//! Golden schema tests for the machine-readable reports.
//!
//! `vroute route --json` and `vroute batch --json` are consumed by
//! scripts and dashboards, so their field names and shape are a
//! contract: adding a field is fine (extend the golden set here,
//! deliberately), but renaming or dropping one must fail a test.

use std::collections::BTreeSet;

use route_cli::{execute, parse_args};

/// Runs a command line through the CLI library, returning its report.
fn run(line: &str) -> String {
    let cmd = parse_args(line.split_whitespace().map(str::to_owned)).expect("parses");
    let mut out = String::new();
    execute(&cmd, &mut out).expect("executes");
    out
}

/// Extracts every key path from a JSON document, dotted by nesting
/// (`stats.complete`) with `[]` marking arrays (`instances[].file`).
/// A 40-line scanner keeps the test dependency-free; it assumes the
/// well-formed output of the CLI's own writer.
fn key_paths(json: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let mut stack: Vec<String> = Vec::new();
    let mut pending: Option<String> = None;
    let chars: Vec<char> = json.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        match chars[i] {
            '"' => {
                let mut s = String::new();
                i += 1;
                while i < chars.len() && chars[i] != '"' {
                    if chars[i] == '\\' {
                        i += 1;
                    }
                    if i < chars.len() {
                        s.push(chars[i]);
                    }
                    i += 1;
                }
                let mut j = i + 1;
                while j < chars.len() && chars[j].is_whitespace() {
                    j += 1;
                }
                if j < chars.len() && chars[j] == ':' {
                    let prefix: Vec<&str> =
                        stack.iter().map(String::as_str).filter(|s| !s.is_empty()).collect();
                    let path = if prefix.is_empty() {
                        s.clone()
                    } else {
                        format!("{}.{}", prefix.join("."), s)
                    };
                    out.insert(path);
                    pending = Some(s);
                } else {
                    pending = None;
                }
            }
            '{' => stack.push(pending.take().unwrap_or_default()),
            '[' => stack.push(pending.take().map(|k| format!("{k}[]")).unwrap_or_default()),
            '}' | ']' => {
                stack.pop();
                pending = None;
            }
            ',' => pending = None,
            _ => {}
        }
        i += 1;
    }
    out
}

fn metrics_keys(prefix: &str) -> Vec<String> {
    [
        "nets_scheduled",
        "nets_committed",
        "nets_failed",
        "hard_searches_won",
        "soft_searches_won",
        "weak_modifications",
        "strong_ripups",
        "penalty_escalations",
        "max_penalty",
        "expanded",
        "searches",
        "expanded_per_search_mean",
        "expanded_max",
    ]
    .iter()
    .map(|k| format!("{prefix}.{k}"))
    .collect()
}

fn golden(mut base: Vec<&str>, extra: Vec<String>) -> BTreeSet<String> {
    base.sort_unstable();
    base.iter().map(|s| s.to_string()).chain(extra).collect()
}

/// A routable instance on disk, shared by the schema tests.
fn instance(dir: &std::path::Path, name: &str) -> String {
    std::fs::create_dir_all(dir).expect("creating the test directory");
    let path = dir.join(name);
    let text = run("gen switchbox --width 10 --height 8 --nets 5 --seed 4");
    std::fs::write(&path, text).expect("writing the test instance");
    path.display().to_string()
}

#[test]
fn route_json_schema_is_pinned() {
    let dir = std::env::temp_dir().join("vroute-json-schema-route");
    let sb = instance(&dir, "box.sb");
    let report = dir.join("report.json");
    run(&format!("route {sb} --json {}", report.display()));
    let json = std::fs::read_to_string(&report).unwrap();

    let expected = golden(
        vec![
            "v", "command", "file", "router", "status", "complete", "clean", "wire", "vias",
            "checksum", "metrics",
        ],
        metrics_keys("metrics"),
    );
    assert_eq!(key_paths(&json), expected, "route --json schema changed:\n{json}");
    assert!(json.contains("\"v\": 1"), "{json}");
    assert!(json.contains("\"command\": \"route\""), "{json}");
    assert!(json.contains("\"router\": \"ripup\""), "{json}");
    assert!(json.contains("\"status\": \"complete\""), "{json}");
}

#[test]
fn batch_json_schema_is_pinned() {
    let dir = std::env::temp_dir().join("vroute-json-schema-batch");
    let a = instance(&dir, "a.sb");
    let b = instance(&dir, "b.sb");
    let report = dir.join("batch.json");
    run(&format!("batch {a} {b} --jobs 1 --json {}", report.display()));
    let json = std::fs::read_to_string(&report).unwrap();

    let expected = golden(
        vec![
            "v",
            "command",
            "router",
            "jobs",
            "digest",
            "instances",
            "instances[].file",
            "instances[].status",
            "instances[].wire",
            "instances[].vias",
            "instances[].ms",
            "instances[].checksum",
            "stats",
            "stats.complete",
            "stats.incomplete",
            "stats.infeasible",
            "stats.errored",
            "stats.panicked",
            "stats.timed_out",
            "stats.failed_nets",
            "stats.wirelength",
            "stats.vias",
            "stats.batch_ms",
            "stats.busy_ms",
            "stats.throughput_per_sec",
        ],
        Vec::new(),
    );
    assert_eq!(key_paths(&json), expected, "batch --json schema changed:\n{json}");
    assert!(json.contains("\"v\": 1"), "{json}");
    assert!(json.contains("\"command\": \"batch\""), "{json}");
}

#[test]
fn analyze_json_schema_is_pinned() {
    let dir = std::env::temp_dir().join("vroute-json-schema-analyze");
    let sb = instance(&dir, "box.sb");
    let routes = dir.join("box.routes");
    run(&format!("route {sb} --save {}", routes.display()));
    let report = dir.join("analyze.json");
    run(&format!("analyze {sb} {} --json {}", routes.display(), report.display()));
    let json = std::fs::read_to_string(&report).unwrap();

    // A clean instance has an empty diagnostics array, so pin the
    // per-diagnostic keys on an infeasible one afterwards.
    let mut expected = golden(
        vec![
            "v",
            "command",
            "file",
            "feasible",
            "clean",
            "certificates",
            "lint_findings",
            "diagnostics",
        ],
        Vec::new(),
    );
    assert_eq!(key_paths(&json), expected, "analyze --json schema changed:\n{json}");
    assert!(json.contains("\"command\": \"analyze\""), "{json}");
    assert!(json.contains("\"diagnostics\": []"), "{json}");

    let walled = dir.join("walled.sb");
    std::fs::write(
        &walled,
        "sb 5 4\nobstacle 2 0\nobstacle 2 1\nobstacle 2 2\nobstacle 2 3\n\
         net a 0 1 M1  4 2 M1\n",
    )
    .unwrap();
    let report = dir.join("walled.json");
    let cmd = parse_args(
        format!("analyze {} --json {}", walled.display(), report.display())
            .split_whitespace()
            .map(str::to_owned),
    )
    .expect("parses");
    let mut out = String::new();
    assert!(!execute(&cmd, &mut out).expect("executes"), "{out}");
    let json = std::fs::read_to_string(&report).unwrap();
    expected.extend(
        [
            "diagnostics[].severity",
            "diagnostics[].code",
            "diagnostics[].rule",
            "diagnostics[].message",
            "diagnostics[].span",
            "diagnostics[].span.from",
            "diagnostics[].span.to",
            "diagnostics[].span.layer",
            "diagnostics[].net",
            "diagnostics[].hint",
        ]
        .iter()
        .map(|s| s.to_string()),
    );
    assert_eq!(key_paths(&json), expected, "analyze diagnostic schema changed:\n{json}");
}

#[test]
fn chip_json_schema_is_pinned() {
    let dir = std::env::temp_dir().join("vroute-json-schema-chip");
    std::fs::create_dir_all(&dir).expect("creating the test directory");
    let report = dir.join("chip.json");
    run(&format!(
        "chip --width 32 --height 32 --nets 40 --seed 3 --tile 8 --jobs 1 --analyze --json {}",
        report.display()
    ));
    let json = std::fs::read_to_string(&report).unwrap();

    let expected = golden(
        vec![
            "v",
            "command",
            "width",
            "height",
            "nets",
            "seed",
            "tile",
            "jobs",
            "status",
            "wire",
            "vias",
            "checksum",
            "legal",
            "complete",
            "failed",
            "crossings",
            "dropped",
            "tiles_routed",
            "tiles_errored",
            "seams",
            "seams_repaired",
            "seam_ripups",
            "seam_completed",
            "fallback_completed",
            "pruned_steps",
            "infeasible",
            "certified_nets",
            "features",
            "ms",
        ],
        Vec::new(),
    );
    assert_eq!(key_paths(&json), expected, "chip --json schema changed:\n{json}");
    assert!(json.contains("\"command\": \"chip\""), "{json}");
    // The analyze/ordering keys are constant-shape: present (with the
    // same names) whether or not the gate fires, so report diffing
    // over reruns stays key-stable.
    assert!(json.contains("\"features\": \"bbox\""), "{json}");
}

#[test]
fn supervised_chip_json_schema_is_pinned() {
    // The supervised report swaps the wall-clock field for the recovery
    // counters: everything else matches the plain chip schema, and no
    // timing-dependent key remains (a killed-and-resumed run must
    // reproduce this report byte for byte).
    let dir = std::env::temp_dir().join("vroute-json-schema-chip-supervised");
    std::fs::create_dir_all(&dir).expect("creating the test directory");
    let report = dir.join("chip.json");
    run(&format!(
        "chip --width 32 --height 32 --nets 40 --seed 3 --tile 8 --jobs 1 --analyze \
         --retries 1 --json {}",
        report.display()
    ));
    let json = std::fs::read_to_string(&report).unwrap();

    let expected = golden(
        vec![
            "v",
            "command",
            "width",
            "height",
            "nets",
            "seed",
            "tile",
            "jobs",
            "status",
            "wire",
            "vias",
            "checksum",
            "legal",
            "complete",
            "failed",
            "crossings",
            "dropped",
            "tiles_routed",
            "tiles_errored",
            "seams",
            "seams_repaired",
            "seam_ripups",
            "seam_completed",
            "fallback_completed",
            "pruned_steps",
            "infeasible",
            "certified_nets",
            "features",
            "tiles_retried",
            "tiles_fell_back",
            "tiles_salvaged",
            "seam_escalations",
        ],
        Vec::new(),
    );
    assert_eq!(key_paths(&json), expected, "supervised chip --json schema changed:\n{json}");
    assert!(!json.contains("\"ms\""), "supervised chip reports must omit wall-clock:\n{json}");
}

#[test]
fn analyze_chip_json_schema_is_pinned() {
    let dir = std::env::temp_dir().join("vroute-json-schema-analyze-chip");
    std::fs::create_dir_all(&dir).expect("creating the test directory");
    // A sealed wall at x = 2 splits the 5x4 board into separate tile
    // regions at tile size 2: the report carries certificates, the
    // congestion heatmap and the per-net feature vectors at once.
    let walled = dir.join("walled.sb");
    std::fs::write(
        &walled,
        "sb 5 4\nobstacle 2 0\nobstacle 2 1\nobstacle 2 2\nobstacle 2 3\n\
         net a 0 1 M1  4 2 M1\n",
    )
    .unwrap();
    let report = dir.join("analyze-chip.json");
    let cmd = parse_args(
        format!("analyze {} --chip --tile 2 --json {}", walled.display(), report.display())
            .split_whitespace()
            .map(str::to_owned),
    )
    .expect("parses");
    let mut out = String::new();
    assert!(!execute(&cmd, &mut out).expect("executes"), "{out}");
    let json = std::fs::read_to_string(&report).unwrap();

    let expected = golden(
        vec![
            "v",
            "command",
            "file",
            "tile",
            "feasible",
            "clean",
            "certificates",
            "certified_nets",
            "congestion",
            "congestion.cols",
            "congestion.rows",
            "congestion.peak",
            "congestion.heatmap",
            "features",
            "features[].net",
            "features[].congestion",
            "features[].pin_density",
            "features[].bbox_area",
            "features[].crossings",
            "diagnostics",
            "diagnostics[].severity",
            "diagnostics[].code",
            "diagnostics[].rule",
            "diagnostics[].message",
            "diagnostics[].span",
            "diagnostics[].span.from",
            "diagnostics[].span.to",
            "diagnostics[].span.layer",
            "diagnostics[].net",
            "diagnostics[].hint",
        ],
        Vec::new(),
    );
    assert_eq!(key_paths(&json), expected, "analyze --chip --json schema changed:\n{json}");
    assert!(json.contains("\"command\": \"analyze-chip\""), "{json}");
    assert!(json.contains("\"code\": \"F004\""), "{json}");
    assert!(json.contains("\"code\": \"F006\""), "{json}");
    assert!(json.contains("\"feasible\": false"), "{json}");
}

#[test]
fn batch_infeasible_outcome_keys_are_pinned() {
    let dir = std::env::temp_dir().join("vroute-json-schema-batch-inf");
    std::fs::create_dir_all(&dir).unwrap();
    let walled = dir.join("walled.sb");
    std::fs::write(
        &walled,
        "sb 5 4\nobstacle 2 0\nobstacle 2 1\nobstacle 2 2\nobstacle 2 3\n\
         net a 0 1 M1  4 2 M1\n",
    )
    .unwrap();
    let report = dir.join("batch.json");
    let cmd = parse_args(
        format!("batch {} --analyze --jobs 1 --json {}", walled.display(), report.display())
            .split_whitespace()
            .map(str::to_owned),
    )
    .expect("parses");
    let mut out = String::new();
    assert!(!execute(&cmd, &mut out).expect("executes"), "{out}");
    let json = std::fs::read_to_string(&report).unwrap();
    let keys = key_paths(&json);
    // Infeasible records swap the routed-stats keys for a reason.
    for key in ["instances[].file", "instances[].status", "instances[].reason", "instances[].ms"] {
        assert!(keys.contains(key), "missing {key} in:\n{json}");
    }
    for key in ["instances[].wire", "instances[].vias", "instances[].checksum"] {
        assert!(!keys.contains(key), "unexpected {key} in:\n{json}");
    }
    assert!(json.contains("\"status\": \"infeasible\""), "{json}");
    assert!(json.contains("\"infeasible\": 1"), "{json}");
}

#[test]
fn supervised_batch_json_schema_is_pinned() {
    let dir = std::env::temp_dir().join("vroute-json-schema-batch-sup");
    let a = instance(&dir, "a.sb");
    let b = instance(&dir, "b.sb");
    let report = dir.join("supervised.json");
    run(&format!("batch {a} {b} --retries 1 --fallback lee --jobs 1 --json {}", report.display()));
    let json = std::fs::read_to_string(&report).unwrap();

    // The supervised report is a deterministic contract: no wall-clock
    // keys (ms, batch_ms, busy_ms, throughput) and no resume counter,
    // so a killed-and-resumed run reproduces it byte for byte.
    let expected = golden(
        vec![
            "v",
            "command",
            "router",
            "jobs",
            "retries",
            "fallbacks",
            "digest",
            "instances",
            "instances[].file",
            "instances[].status",
            "instances[].path",
            "instances[].attempts",
            "instances[].wire",
            "instances[].vias",
            "instances[].checksum",
            "stats",
            "stats.complete",
            "stats.salvaged",
            "stats.infeasible",
            "stats.errored",
            "stats.panicked",
            "stats.timed_out",
            "stats.retried",
            "stats.fell_back",
            "stats.failed_nets",
            "stats.wirelength",
            "stats.vias",
        ],
        Vec::new(),
    );
    assert_eq!(key_paths(&json), expected, "supervised batch --json schema changed:\n{json}");
    assert!(json.contains("\"command\": \"batch\""), "{json}");
    assert!(json.contains("\"router\": \"ripup\""), "{json}");
    assert!(json.contains("\"retries\": 1"), "{json}");
    assert!(json.contains("\"lee\""), "{json}");
    assert!(json.contains("\"status\": \"complete\""), "{json}");
    assert!(json.contains("\"path\": \"direct\""), "{json}");
}

#[test]
fn supervised_salvage_outcome_keys_are_pinned() {
    let dir = std::env::temp_dir().join("vroute-json-schema-batch-sup-salvage");
    let a = instance(&dir, "a.sb");
    let report = dir.join("salvaged.json");
    let cmd = parse_args(
        format!("batch {a} --retries 0 --deadline-ms 0 --jobs 1 --json {}", report.display())
            .split_whitespace()
            .map(str::to_owned),
    )
    .expect("parses");
    let mut out = String::new();
    assert!(!execute(&cmd, &mut out).expect("executes"), "{out}");
    let json = std::fs::read_to_string(&report).unwrap();
    let keys = key_paths(&json);
    // Salvaged records keep the routed-stats keys (the snapshot db is
    // real metal) and add the salvage accounting.
    for key in [
        "instances[].wire",
        "instances[].vias",
        "instances[].checksum",
        "instances[].failed_nets",
        "instances[].lint",
        "instances[].error",
    ] {
        assert!(keys.contains(key), "missing {key} in:\n{json}");
    }
    assert!(json.contains("\"status\": \"salvaged\""), "{json}");
    assert!(json.contains("\"salvaged\": 1"), "{json}");
}

#[test]
fn serve_v1_envelope_key_paths_are_pinned() {
    use route_proto::{event_line, response_err, response_ok, ErrorCode, Json, WireError};

    // The serve wire envelopes are the same versioned contract as the
    // report files: pin their key paths so the daemon cannot drift.
    let ok = response_ok(Some("r0"), Json::obj([("status", Json::str("complete"))]));
    let expected: BTreeSet<String> =
        ["v", "id", "ok", "result", "result.status"].iter().map(|s| s.to_string()).collect();
    assert_eq!(key_paths(&ok.render()), expected, "{}", ok.render());

    let err = response_err(None, &WireError::new(ErrorCode::BadJson, "truncated".to_string()));
    let expected: BTreeSet<String> = ["v", "id", "ok", "error", "error.code", "error.message"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    assert_eq!(key_paths(&err.render()), expected, "{}", err.render());
    assert!(err.render_compact().starts_with("{\"v\":1,"), "{}", err.render_compact());

    let ev = event_line(
        Some("r0"),
        &route_model::RouteEvent::NetCommitted { net: route_model::NetId(3) },
    );
    let expected: BTreeSet<String> =
        ["v", "id", "ev", "net"].iter().map(|s| s.to_string()).collect();
    assert_eq!(key_paths(&ev.render()), expected, "{}", ev.render());
}

#[test]
fn batch_json_with_metrics_adds_only_the_metrics_block() {
    let dir = std::env::temp_dir().join("vroute-json-schema-batch-metrics");
    let a = instance(&dir, "a.sb");
    let plain = dir.join("plain.json");
    let metered = dir.join("metered.json");
    run(&format!("batch {a} --jobs 1 --json {}", plain.display()));
    run(&format!("batch {a} --jobs 1 --metrics --json {}", metered.display()));

    let plain_keys = key_paths(&std::fs::read_to_string(&plain).unwrap());
    let metered_keys = key_paths(&std::fs::read_to_string(&metered).unwrap());

    let mut expected_extra: BTreeSet<String> = metrics_keys("metrics").into_iter().collect();
    expected_extra.insert("metrics".to_string());
    let actual_extra: BTreeSet<String> = metered_keys.difference(&plain_keys).cloned().collect();
    assert_eq!(actual_extra, expected_extra, "--metrics must only add the metrics block");
    assert!(plain_keys.is_subset(&metered_keys));
}
