//! Implementation of the `vroute` command-line detailed router.
//!
//! The binary front-end in `main.rs` is a thin shell over this library
//! so argument parsing and command execution are unit-testable.
//!
//! ```text
//! vroute route  FILE [--router ripup|lee|tiled] [--ascii] [--svg OUT] [--save OUT] [--optimize]
//!               [--metrics] [--trace OUT] [--json OUT] [--analyze]
//! vroute batch  FILE... [--list LIST] [--router KIND] [--jobs N] [--json OUT] [--deadline-ms MS]
//!               [--metrics] [--trace OUT] [--analyze]
//!               [--retries N] [--fallback KIND,...] [--journal DIR] [--resume]
//! vroute analyze INSTANCE [ROUTES] [--chip [--tile T]] [--json OUT]
//! vroute check  FILE ROUTES [--svg OUT]
//! vroute channel FILE [--router ripup|lea|dogleg|greedy|yacr] [--tracks N] [--layers 2|3]
//! vroute gen switchbox --width W --height H --nets N [--seed S]
//! vroute gen channel --width W --nets N [--extra-pin-pct P] [--window W] [--seed S]
//! vroute chip [--width W --height H --nets N --macros M] [--seed S] [--tile T] [--jobs N]
//!             [--analyze] [--order bbox|features] [--retries N] [--fallback lee]
//!             [--journal DIR] [--resume] [--json OUT]
//! vroute fuzz [--seeds A..B] [CASE...] [--jobs N] [--shrink] [--out DIR]
//! ```
//!
//! Instance files use the text formats of
//! [`route_benchdata::format`]; see that module for the grammar.

#![warn(missing_docs)]

mod args;
mod run;
mod serve;

pub use args::{
    parse_args, BatchRouterKind, ChannelRouterKind, ChipOrder, Command, GenKind, ParseArgsError,
    ServeEndpoint, SwitchRouterKind,
};
pub use run::{execute, ExecutionError};

/// Usage text printed on `--help` or argument errors.
pub const USAGE: &str = "\
vroute — two-layer detailed router

USAGE:
  vroute route FILE [--router ripup|lee|tiled] [--frontier heap|buckets] [--ascii] [--svg OUT]
               [--save OUT] [--optimize] [--metrics] [--trace OUT] [--json OUT] [--analyze]
  vroute batch FILE... [--list LIST] [--router KIND] [--frontier heap|buckets] [--jobs N]
               [--json OUT] [--deadline-ms MS] [--metrics] [--trace OUT] [--analyze]
               [--retries N] [--fallback KIND,...] [--journal DIR] [--resume]
  vroute analyze INSTANCE [ROUTES] [--chip [--tile T]] [--json OUT]
  vroute check FILE ROUTES [--svg OUT]
  vroute channel FILE [--router ripup|lea|dogleg|greedy|yacr] [--tracks N] [--layers 2|3]
  vroute gen switchbox --width W --height H --nets N [--seed S]
  vroute gen channel --width W --nets N [--extra-pin-pct P] [--window W] [--seed S]
  vroute chip [--width W --height H --nets N --macros M] [--seed S] [--tile T]
              [--jobs N] [--analyze] [--order bbox|features] [--retries N]
              [--fallback lee] [--journal DIR] [--resume] [--json OUT]
  vroute fuzz [--seeds A..B] [CASE...] [--jobs N] [--shrink] [--out DIR]
  vroute serve (--socket PATH | --tcp ADDR) [--workers N] [--queue N]
               [--deadline-ms MS] [--journal DIR] [--resume]
  vroute client (--socket PATH | --tcp ADDR) [FILE...] [--router KIND]
               [--deadline-ms MS] [--priority 0-9] [--events] [--shutdown]

COMMANDS:
  route     Route a switchbox instance file (sb format)
  batch     Route many instance files concurrently through the batch engine
  analyze   Statically analyze an instance (sb or fuzzcase format) without
            routing: feasibility certificates (F rules) plus, with a saved
            ROUTES file, the whole-database lint registry (L rules);
            --chip runs the chip-scale pass instead (F004-F006 tile-cut,
            seam and walled-region certificates plus a congestion map)
  check     Verify a saved routing (routes format) against its instance
  channel   Route a channel instance file (channel format)
  gen       Generate a random instance and print it to stdout
  chip      Generate a seeded synthetic chip (macro obstacles, mostly-local
            nets) and route it hierarchically: tile-graph planning, parallel
            per-tile detail routing on the batch engine, seam stitching,
            then the flat fallback; --jobs never changes the checksum
  fuzz      Differentially fuzz every router over seeded generator sweeps
            (oracles: independent DRC/claim verification, rip-up vs Lee
            baseline, observer consistency) and/or replay saved CASE files
  serve     Run the persistent routing daemon: warm router workers behind a
            versioned line-delimited JSON protocol (v1) over a unix socket
            or TCP, with bounded-queue admission control, priorities,
            per-request deadlines, streamed events, and an optional
            crash-safe request journal
  client    Drive a running daemon: one route request per FILE, printing
            each response line; --shutdown asks the daemon to stop

OPTIONS:
  --router KIND   Routing algorithm (default: ripup; batch also takes
                  lee|lea|dogleg|greedy|yacr|swbox)
  --frontier KIND Rip-up router open list: buckets (default) or heap; both
                  produce bit-identical routings
  --jobs N        Batch worker threads (default 0 = one per hardware thread)
  --list LIST     File with one instance path per line (# comments allowed)
  --json OUT      Write a machine-readable report (including metrics) to OUT
  --deadline-ms MS  Disqualify instances that take longer than MS
  --analyze       route: gate on the feasibility analysis and lint the routed
                  database; batch: skip provably infeasible instances;
                  chip: run the chip-scale precheck and skip certified nets
  --chip          analyze: run the chip-scale pass at tile size T
                  (--tile, default 16) instead of the flat one
  --order KIND    chip: planning net order, bbox (default) or features
                  (static congestion estimate first); both deterministic
  --metrics       Print the observer metrics table (nets, searches, rip-ups)
  --trace OUT     Write the observer event stream as line-delimited JSON to OUT
  --ascii         Print the routed layout as ASCII art
  --svg OUT       Write the routed layout as SVG to OUT
  --save OUT      Write the routed traces to OUT (reload with `check`)
  --optimize      Run the wirelength cleanup pass after routing
  --tracks N      Channel track count (default: search from density)
  --layers N      Channel routing layers, 2 or 3 (rip-up only)
  --seeds A..B    Fuzz the half-open seed range A..B (one instance per seed)
  --shrink        Minimize each fuzz finding to a smallest reproducing case
  --out DIR       Write minimized fuzz finding case files into DIR
  --socket PATH   serve/client: unix-domain socket endpoint
  --tcp ADDR      serve/client: TCP endpoint, e.g. 127.0.0.1:7777
  --workers N     serve: warm worker threads (0 = one per hardware thread)
  --queue N       serve: admission-queue bound; excess requests are rejected
                  with an `overloaded` error (default 64)
  --priority P    client: request priority 0-9, higher first (default 4)
  --events        client: subscribe to streamed per-net routing events
  --shutdown      client: ask the daemon to stop
  serve also takes --journal DIR (journal each accepted request to
  DIR/serve.ldj before routing it) and --resume (replay requests left
  pending by a crash before accepting connections; requires --journal)

SUPERVISED RECOVERY (batch; any of these selects the supervised engine):
  --retries N     Re-route failed instances up to N times with escalated
                  budgets and perturbed net order (N <= 16)
  --fallback K,.. Comma-separated router chain tried after retries fail
  --journal DIR   Append each outcome to DIR/journal.ldj (crash-safe WAL)
  --resume        Skip instances already completed in DIR/journal.ldj;
                  the resumed JSON report is byte-identical to an
                  uninterrupted run's
  Terminal failures salvage the best partial routing (most nets routed)
  and lint it instead of discarding the work; --deadline-ms becomes a
  per-attempt budget and timed-out attempts feed the salvage snapshot.
  Not combinable with --metrics/--trace.

SUPERVISED CHIP FLOW (chip; --retries/--fallback select it):
  --retries N     Re-route failed tiles up to N times with escalated
                  budgets and a per-tile perturbed net order (N <= 16)
  --fallback lee  Hand exhausted tiles to the sequential Lee baseline
                  before salvaging their best partial snapshot
  --journal DIR   Append each tile's outcome to DIR/chip.ldj (crash-safe
                  WAL, fsync'd per tile); works with or without the
                  supervision flags
  --resume        Replay tiles already completed in DIR/chip.ldj byte
                  for byte and route only the rest; requires --journal.
                  The resumed JSON report is byte-identical to an
                  uninterrupted run's (supervised chip reports omit the
                  wall-clock field for exactly this reason).
  Seam repair always escalates on its own: widened band, re-anchored
  fresh band, then a per-net flat reroute. VROUTE_FAULT targets tiles
  (`panic@tile:3`) or seam rungs (`fail@seam`).

ENVIRONMENT:
  VROUTE_FUZZ_FAULT  Inject a deliberate router bug into `fuzz` runs for
                     mutation testing: hide-failures | drop-trace
  VROUTE_FAULT       Inject engine faults into supervised `batch` and
                     `chip` runs: KIND[@TARGETS[@ATTEMPTS]] with KIND one
                     of panic | fail | delay-MS, and TARGETS instances
                     (`fail@1,4@1`), tiles (`panic@tile:3`), or seam
                     rungs (`fail@seam`)
  VROUTE_SERVE_FAULT Delay every `serve` job by a fixed amount for crash
                     testing: delay-MS (e.g. `delay-800`)
";
