//! `vroute` — command-line front-end for the detailed routing library.

use std::process::ExitCode;

use route_cli::{execute, parse_args, USAGE};

fn main() -> ExitCode {
    let cmd = match parse_args(std::env::args().skip(1)) {
        Ok(cmd) => cmd,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let mut out = String::new();
    match execute(&cmd, &mut out) {
        Ok(complete) => {
            print!("{out}");
            if complete {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            print!("{out}");
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
