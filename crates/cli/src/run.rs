//! Command execution for `vroute`.

use std::error::Error;
use std::fmt;

use mighty::engine::{EngineConfig, ObserveMode, RouteEngine};
use mighty::{
    ChipJournal, FallbackChain, FaultPlan, InstanceStatus, MightyRouter, RetryPolicy, RouterConfig,
    RunJournal, Supervisor,
};
use route_analyze::{
    analyze_problem, lint_db, render_text, sort_diagnostics, Diagnostic, Severity,
};
use route_bench::trace::trace_lines;
use route_benchdata::format::{self, ParseError};
use route_benchdata::gen::{ChannelGen, SwitchboxGen};
use route_channel::{dogleg, greedy, lea, yacr, RouteError};
use route_maze::{sequential, CostModel, LeeRouter};
use route_model::{
    render_layers, render_svg, DetailedRouter, EventLog, MetricsRecorder, RouteDb, RouteObserver,
};
use route_opt::{cleanup, OptimizeConfig};
use route_proto::{metrics_json, versioned_doc, Json, RouteOutcomeReport};
use route_verify::verify;

use crate::{BatchRouterKind, ChannelRouterKind, Command, GenKind, SwitchRouterKind, USAGE};

/// Error produced when executing a command.
#[derive(Debug)]
pub enum ExecutionError {
    /// Reading or writing a file failed.
    Io(String, std::io::Error),
    /// Parsing the instance failed.
    Parse(ParseError),
    /// A channel router could not route the instance.
    Unroutable(String),
}

impl fmt::Display for ExecutionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecutionError::Io(path, e) => write!(f, "{path}: {e}"),
            ExecutionError::Parse(e) => write!(f, "parse error: {e}"),
            ExecutionError::Unroutable(msg) => write!(f, "{msg}"),
        }
    }
}

impl Error for ExecutionError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ExecutionError::Io(_, e) => Some(e),
            ExecutionError::Parse(e) => Some(e),
            ExecutionError::Unroutable(_) => None,
        }
    }
}

impl From<ParseError> for ExecutionError {
    fn from(e: ParseError) -> Self {
        ExecutionError::Parse(e)
    }
}

/// Executes a parsed command, writing human-readable output to `out`.
///
/// Returns `true` when the routing (if any) completed all nets, so the
/// binary can choose its exit code.
///
/// # Errors
///
/// Returns [`ExecutionError`] for I/O failures, malformed instance
/// files, or channel routers that cannot route the instance at all.
pub fn execute(cmd: &Command, out: &mut dyn fmt::Write) -> Result<bool, ExecutionError> {
    match cmd {
        Command::Help => {
            write!(out, "{USAGE}").expect("writing usage");
            Ok(true)
        }
        Command::Gen(kind) => {
            // Pre-validate dimensions and capacity so user errors produce
            // a message, not a library panic.
            let bad_dims = match *kind {
                GenKind::Switchbox { width, height, .. } => {
                    width == 0 || height == 0 || width > 4096 || height > 4096
                }
                GenKind::Channel { width, .. } => width == 0 || width > 65536,
            };
            if bad_dims {
                return Err(ExecutionError::Unroutable(
                    "instance dimensions out of supported range (switchbox sides 1..=4096, \
                     channel width 1..=65536)"
                        .to_string(),
                ));
            }
            let text = match *kind {
                GenKind::Switchbox { width, height, nets, seed } => {
                    let slots = 2 * height as u64 + 2 * width.saturating_sub(2) as u64;
                    if u64::from(nets) * 2 > slots {
                        return Err(ExecutionError::Unroutable(format!(
                            "a {width}x{height} boundary holds at most {} pins; \
                             {nets} nets need {}",
                            slots,
                            nets * 2
                        )));
                    }
                    format::write_problem(&SwitchboxGen { width, height, nets, seed }.build())
                }
                GenKind::Channel { width, nets, extra_pin_pct, window, seed } => {
                    // Worst case every net takes 3 pins.
                    if u64::from(nets) * 3 > 2 * width as u64 {
                        return Err(ExecutionError::Unroutable(format!(
                            "a {width}-column channel holds at most {} pins; \
                             {nets} nets may need up to {}",
                            2 * width,
                            nets * 3
                        )));
                    }
                    format::write_channel(
                        &ChannelGen { width, nets, extra_pin_pct, span_window: window, seed }
                            .build(),
                    )
                }
            };
            write!(out, "{text}").expect("writing instance");
            Ok(true)
        }
        Command::Fuzz { seeds, cases, jobs, shrink, out: out_dir } => {
            execute_fuzz(seeds, cases, *jobs, *shrink, out_dir.as_deref(), out)
        }
        Command::Chip {
            width,
            height,
            nets,
            macros,
            seed,
            tile,
            jobs,
            analyze,
            order,
            retries,
            fallback,
            journal,
            resume,
            json,
        } => {
            let gen = route_benchdata::gen::ChipGen {
                width: *width,
                height: *height,
                nets: *nets,
                macros: *macros,
                ..route_benchdata::gen::ChipGen::small(*seed)
            };
            let problem = gen.build();
            writeln!(out, "chip: {width}x{height}, {nets} nets, {macros} macros, seed {seed}")
                .expect("writing");
            let plan_order = match order {
                crate::ChipOrder::Bbox => route_global::PlanOrder::Bbox,
                crate::ChipOrder::Features => route_global::PlanOrder::Features,
            };
            let cfg = route_global::GlobalConfig {
                tile: *tile,
                jobs: *jobs,
                analyze: *analyze,
                precheck: *analyze,
                order: plan_order,
                ..route_global::GlobalConfig::default()
            };
            // A fault plan or any supervision flag selects the
            // supervised tile stage; a journal alone runs it with
            // supervision off (`ChipSupervision::none()`), which routes
            // each tile exactly once like the plain flow.
            let fault = match std::env::var("VROUTE_FAULT") {
                Ok(spec) if !spec.is_empty() => {
                    let plan = FaultPlan::parse(&spec)
                        .map_err(|e| ExecutionError::Unroutable(format!("VROUTE_FAULT: {e}")))?;
                    writeln!(out, "fault injection active: {spec}").expect("writing");
                    Some(plan)
                }
                _ => None,
            };
            let supervised = retries.is_some() || *fallback || fault.is_some();
            let chip_journal = match journal {
                Some(dir) => {
                    let d = std::path::Path::new(dir);
                    let j = if *resume { ChipJournal::resume(d) } else { ChipJournal::create(d) }
                        .map_err(|e| ExecutionError::Io(d.display().to_string(), e))?;
                    Some(j)
                }
                None => None,
            };
            let started = std::time::Instant::now();
            let outcome = if supervised || chip_journal.is_some() {
                let sup = if supervised {
                    route_global::ChipSupervision {
                        retries: retries.unwrap_or(1),
                        fallback: *fallback,
                        seed: *seed,
                        fault,
                    }
                } else {
                    route_global::ChipSupervision::none()
                };
                route_global::route_hierarchical_supervised(
                    &problem,
                    &cfg,
                    &sup,
                    chip_journal.as_ref(),
                )
            } else {
                route_global::route_hierarchical(&problem, &cfg)
            };
            let recovering = supervised || chip_journal.is_some();
            let ms = started.elapsed().as_millis() as u64;
            let report = verify(&problem, outcome.db());
            let stats = outcome.stats();
            let chip = outcome.chip_stats();
            writeln!(
                out,
                "tiles: {}x{} (tile {tile}), {} crossings, {} dropped at planning",
                stats.tiles.0, stats.tiles.1, stats.crossings, stats.dropped
            )
            .expect("writing");
            writeln!(
                out,
                "detail: {} tiles routed, {} errored, {} tile failures",
                chip.tiles_routed, chip.tiles_errored, stats.tile_failures
            )
            .expect("writing");
            if recovering {
                writeln!(
                    out,
                    "recovery: {} tile(s) retried, {} fell back, {} salvaged, \
                     {} seam escalation(s)",
                    chip.tiles_retried,
                    chip.tiles_fell_back,
                    chip.tiles_salvaged,
                    chip.seam_escalations
                )
                .expect("writing");
            }
            if let Some(dir) = journal {
                writeln!(
                    out,
                    "journal: {dir}, {} tile(s) replayed from a previous run",
                    outcome.resumed_tiles()
                )
                .expect("writing");
            }
            if let Some(e) = outcome.journal_error() {
                writeln!(out, "journal error: {e}").expect("writing");
            }
            writeln!(
                out,
                "stitch: {}/{} seams repaired, {} rip-ups, {} nets completed; \
                 fallback completed {}, pruned {} dead steps",
                chip.seams_repaired,
                chip.seams,
                chip.seam_ripups,
                chip.seam_completed,
                stats.fallback_completed,
                chip.pruned_steps
            )
            .expect("writing");
            if *analyze {
                writeln!(
                    out,
                    "analyze: {} chip certificate(s), {} net(s) certified unroutable",
                    chip.analyze_certificates, chip.certified_nets
                )
                .expect("writing");
            }
            let complete = outcome.is_complete();
            let legal = report.is_clean() || report.is_legal_but_incomplete();
            let db_stats = outcome.db().stats();
            writeln!(
                out,
                "result: {}/{} nets routed, legal: {legal}, checksum {:016x}, {ms} ms",
                problem.nets().len() - outcome.failed().len(),
                problem.nets().len(),
                outcome.db().checksum()
            )
            .expect("writing");
            if let Some(path) = json {
                let report_outcome = RouteOutcomeReport::Routed {
                    legal,
                    complete,
                    wire: db_stats.wirelength,
                    vias: db_stats.vias,
                    checksum: outcome.db().checksum(),
                };
                let mut pairs = vec![
                    ("width".to_string(), Json::from(u64::from(*width))),
                    ("height".to_string(), Json::from(u64::from(*height))),
                    ("nets".to_string(), Json::from(u64::from(*nets))),
                    ("seed".to_string(), Json::from(*seed)),
                    ("tile".to_string(), Json::from(u64::from(*tile))),
                    ("jobs".to_string(), Json::from(*jobs as u64)),
                ];
                pairs.extend(report_outcome.pairs());
                pairs.extend([
                    ("legal".to_string(), Json::from(legal)),
                    ("complete".to_string(), Json::from(complete)),
                    ("failed".to_string(), Json::from(outcome.failed().len() as u64)),
                    ("crossings".to_string(), Json::from(stats.crossings as u64)),
                    ("dropped".to_string(), Json::from(stats.dropped as u64)),
                    ("tiles_routed".to_string(), Json::from(chip.tiles_routed as u64)),
                    ("tiles_errored".to_string(), Json::from(chip.tiles_errored as u64)),
                    ("seams".to_string(), Json::from(chip.seams as u64)),
                    ("seams_repaired".to_string(), Json::from(chip.seams_repaired as u64)),
                    ("seam_ripups".to_string(), Json::from(chip.seam_ripups as u64)),
                    ("seam_completed".to_string(), Json::from(chip.seam_completed as u64)),
                    ("fallback_completed".to_string(), Json::from(stats.fallback_completed as u64)),
                    ("pruned_steps".to_string(), Json::from(chip.pruned_steps as u64)),
                    ("infeasible".to_string(), Json::from(chip.analyze_certificates as u64)),
                    ("certified_nets".to_string(), Json::from(chip.certified_nets as u64)),
                    (
                        "features".to_string(),
                        Json::str(match order {
                            crate::ChipOrder::Bbox => "bbox",
                            crate::ChipOrder::Features => "features",
                        }),
                    ),
                ]);
                if recovering {
                    // The supervised report adds the recovery counters
                    // and deliberately omits the wall-clock field, so a
                    // killed-and-resumed run reproduces the
                    // uninterrupted run's JSON byte for byte (the
                    // resumed-tile count stays in the human text only).
                    pairs.extend([
                        ("tiles_retried".to_string(), Json::from(chip.tiles_retried as u64)),
                        ("tiles_fell_back".to_string(), Json::from(chip.tiles_fell_back as u64)),
                        ("tiles_salvaged".to_string(), Json::from(chip.tiles_salvaged as u64)),
                        ("seam_escalations".to_string(), Json::from(chip.seam_escalations as u64)),
                    ]);
                } else {
                    pairs.push(("ms".to_string(), Json::from(ms)));
                }
                let doc = versioned_doc("chip", pairs);
                std::fs::write(path, doc.render())
                    .map_err(|e| ExecutionError::Io(path.clone(), e))?;
                writeln!(out, "json written to {path}").expect("writing");
            }
            Ok(complete && outcome.journal_error().is_none())
        }
        Command::Serve { endpoint, workers, queue, deadline_ms, journal, resume } => {
            crate::serve::execute_serve(
                &crate::serve::ServeSpec {
                    endpoint,
                    workers: *workers,
                    queue: *queue,
                    deadline_ms: *deadline_ms,
                    journal: journal.as_deref(),
                    resume: *resume,
                },
                out,
            )
        }
        Command::Client { endpoint, files, router, deadline_ms, priority, events, shutdown } => {
            crate::serve::execute_client(
                &crate::serve::ClientSpec {
                    endpoint,
                    files,
                    router: *router,
                    deadline_ms: *deadline_ms,
                    priority: *priority,
                    events: *events,
                    shutdown: *shutdown,
                },
                out,
            )
        }
        Command::Analyze { instance, routes, chip, json } => {
            execute_analyze(instance, routes.as_deref(), *chip, json.as_deref(), out)
        }
        Command::Route {
            file,
            router,
            ascii,
            svg,
            save,
            optimize,
            trace,
            metrics,
            json,
            analyze,
            frontier,
        } => {
            let text =
                std::fs::read_to_string(file).map_err(|e| ExecutionError::Io(file.clone(), e))?;
            let problem = format::parse_problem(&text)?;
            if *analyze {
                // Gate on the static feasibility analysis: a certificate
                // means no router can succeed, so don't bother trying.
                let feasibility = analyze_problem(&problem);
                if let Some(cert) = feasibility.certificates().first() {
                    write!(out, "{}", render_text(feasibility.diagnostics())).expect("writing");
                    return Err(ExecutionError::Unroutable(format!(
                        "provably infeasible: {}",
                        cert.summary()
                    )));
                }
                writeln!(out, "analyze: feasible").expect("writing");
            }
            // Observation is strictly additive: routed databases are
            // bit-identical with and without a log attached, so the
            // unobserved fast path stays untouched unless asked for.
            let observing = *metrics || trace.is_some() || json.is_some();
            let mut log = EventLog::new();
            let mut db: RouteDb;
            let complete = match router {
                SwitchRouterKind::Ripup => {
                    let router = MightyRouter::new(RouterConfig {
                        frontier: *frontier,
                        ..RouterConfig::default()
                    });
                    let outcome = if observing {
                        router.route_observed(&problem, &mut log)
                    } else {
                        router.route(&problem)
                    };
                    let complete = outcome.is_complete();
                    writeln!(out, "router: rip-up/reroute ({})", outcome.stats()).expect("writing");
                    db = outcome.into_db();
                    complete
                }
                SwitchRouterKind::Lee => {
                    let outcome = if observing {
                        sequential::route_all_observed(&problem, CostModel::default(), &mut log)
                    } else {
                        sequential::route_all(&problem, CostModel::default())
                    };
                    let complete = outcome.is_complete();
                    writeln!(out, "router: sequential lee").expect("writing");
                    db = outcome.db;
                    complete
                }
                SwitchRouterKind::Tiled => {
                    let outcome = route_global::route_hierarchical(
                        &problem,
                        &route_global::GlobalConfig::default(),
                    );
                    if observing {
                        // The hierarchical pipeline is not observed
                        // internally; synthesize the per-net summary
                        // events so traces stay schema-uniform.
                        for net in problem.nets() {
                            log.on_net_scheduled(net.id);
                        }
                        for net in problem.nets() {
                            if outcome.failed().contains(&net.id) {
                                log.on_net_failed(net.id);
                            } else {
                                log.on_net_committed(net.id);
                            }
                        }
                    }
                    let complete = outcome.is_complete();
                    writeln!(out, "router: hierarchical ({:?})", outcome.stats()).expect("writing");
                    db = outcome.into_db();
                    complete
                }
            };
            if *optimize {
                let stats = cleanup(&problem, &mut db, &OptimizeConfig::default());
                writeln!(
                    out,
                    "cleanup: {} nets improved, saved {} cost units",
                    stats.improved,
                    stats.saved(3)
                )
                .expect("writing");
            }
            let report = verify(&problem, &db);
            let stats = db.stats();
            writeln!(
                out,
                "nets: {} total, complete: {complete}, wire: {}, vias: {}",
                problem.nets().len(),
                stats.wirelength,
                stats.vias
            )
            .expect("writing");
            writeln!(out, "verify: {report}").expect("writing");
            if *analyze {
                let lint = lint_db(&problem, &db);
                write!(out, "{}", render_text(lint.diagnostics())).expect("writing");
                writeln!(out, "lint: {} finding(s)", lint.findings().len()).expect("writing");
            }
            if *ascii {
                writeln!(out, "\n{}", render_layers(&db)).expect("writing");
            }
            if let Some(path) = svg {
                std::fs::write(path, render_svg(&db))
                    .map_err(|e| ExecutionError::Io(path.clone(), e))?;
                writeln!(out, "svg written to {path}").expect("writing");
            }
            if let Some(path) = save {
                std::fs::write(path, format::write_routes(&problem, &db))
                    .map_err(|e| ExecutionError::Io(path.clone(), e))?;
                writeln!(out, "routes written to {path}").expect("writing");
            }
            let mut rec = MetricsRecorder::new();
            log.replay(&mut rec);
            if *metrics {
                writeln!(out, "metrics:").expect("writing");
                write!(out, "{}", rec.table()).expect("writing");
            }
            if let Some(path) = trace {
                std::fs::write(path, trace_lines(file, log.events()))
                    .map_err(|e| ExecutionError::Io(path.clone(), e))?;
                writeln!(out, "trace written to {path} ({} events)", log.events().len())
                    .expect("writing");
            }
            if let Some(path) = json {
                let stats = db.stats();
                let outcome = RouteOutcomeReport::Routed {
                    legal: report.is_clean() || report.is_legal_but_incomplete(),
                    complete,
                    wire: stats.wirelength,
                    vias: stats.vias,
                    checksum: db.checksum(),
                };
                let mut pairs = vec![
                    ("file".to_string(), Json::str(file.as_str())),
                    ("router".to_string(), Json::str(switch_router_name(*router))),
                ];
                pairs.extend(outcome.pairs());
                pairs.push(("complete".to_string(), Json::from(complete)));
                pairs.push(("clean".to_string(), Json::from(report.is_clean())));
                pairs.push(("metrics".to_string(), metrics_json(&rec)));
                let doc = versioned_doc("route", pairs);
                std::fs::write(path, doc.render())
                    .map_err(|e| ExecutionError::Io(path.clone(), e))?;
                writeln!(out, "json written to {path}").expect("writing");
            }
            Ok(complete)
        }
        Command::Batch {
            files,
            list,
            router,
            jobs,
            json,
            deadline_ms,
            trace,
            metrics,
            analyze,
            retries,
            fallback,
            journal,
            resume,
            frontier,
        } => {
            let mut paths: Vec<String> = files.clone();
            if let Some(listfile) = list {
                let text = std::fs::read_to_string(listfile)
                    .map_err(|e| ExecutionError::Io(listfile.clone(), e))?;
                for line in text.lines() {
                    let line = line.trim();
                    if !line.is_empty() && !line.starts_with('#') {
                        paths.push(line.to_owned());
                    }
                }
            }
            let mut problems = Vec::with_capacity(paths.len());
            let mut fingerprints = Vec::with_capacity(paths.len());
            for path in &paths {
                let text = std::fs::read_to_string(path)
                    .map_err(|e| ExecutionError::Io(path.clone(), e))?;
                fingerprints.push(RunJournal::fingerprint(&text));
                problems.push(format::parse_problem(&text)?);
            }
            if retries.is_some() || !fallback.is_empty() || journal.is_some() {
                let spec = SupervisedSpec {
                    router: *router,
                    jobs: *jobs,
                    deadline_ms: *deadline_ms,
                    analyze: *analyze,
                    retries: retries.unwrap_or(0),
                    fallback,
                    journal: journal.as_deref(),
                    resume: *resume,
                    json: json.as_deref(),
                    frontier: *frontier,
                };
                return execute_batch_supervised(&paths, &problems, &fingerprints, &spec, out);
            }
            let algorithm = batch_router(*router, *frontier);
            let observe = if trace.is_some() {
                ObserveMode::Trace
            } else if *metrics {
                ObserveMode::Metrics
            } else {
                ObserveMode::Off
            };
            let engine = RouteEngine::new(EngineConfig {
                jobs: *jobs,
                deadline: deadline_ms.map(std::time::Duration::from_millis),
                observe,
                precheck: *analyze,
            });
            let batch = engine.route_batch(algorithm.as_ref(), &problems);
            writeln!(
                out,
                "router: {}, jobs: {}, instances: {}",
                algorithm.name(),
                batch.stats.jobs,
                batch.stats.instances
            )
            .expect("writing");
            // An order-sensitive FNV-1a fold of per-instance outcomes:
            // identical digests mean bit-identical batch results.
            let mut digest = 0xcbf2_9ce4_8422_2325u64;
            let mut all_good = true;
            let mut records = Vec::with_capacity(paths.len());
            for (i, (path, result)) in paths.iter().zip(&batch.results).enumerate() {
                let ms = batch.timings[i].as_millis() as u64;
                match result {
                    Ok(routing) => {
                        let report = verify(&problems[i], &routing.db);
                        let s = routing.db.stats();
                        let sum = routing.db.checksum();
                        let outcome = RouteOutcomeReport::Routed {
                            legal: report.is_clean() || report.is_legal_but_incomplete(),
                            complete: routing.is_complete(),
                            wire: s.wirelength,
                            vias: s.vias,
                            checksum: sum,
                        };
                        all_good &= report.is_clean();
                        digest = fnv_fold(digest, sum);
                        writeln!(
                            out,
                            "  {path}: {}, wire {}, vias {}, {ms} ms, checksum {sum:016x}",
                            outcome.status(),
                            s.wirelength,
                            s.vias
                        )
                        .expect("writing");
                        records.push(record_json(path, &outcome, ms));
                    }
                    Err(route_model::RouteError::Infeasible { reason }) => {
                        // A precheck skip is a proof, not a failure: the
                        // instance was never routable in the first place.
                        digest = fnv_str(digest, reason);
                        writeln!(out, "  {path}: infeasible: {reason}").expect("writing");
                        let outcome = RouteOutcomeReport::Infeasible { reason: reason.clone() };
                        records.push(record_json(path, &outcome, ms));
                    }
                    Err(e) => {
                        all_good = false;
                        digest = fnv_str(digest, &e.to_string());
                        writeln!(out, "  {path}: error: {e}").expect("writing");
                        let outcome = RouteOutcomeReport::Failed { error: e.to_string() };
                        records.push(record_json(path, &outcome, ms));
                    }
                }
            }
            let s = batch.stats;
            let throughput = s.instances as f64 / (s.batch_ms.max(1) as f64 / 1000.0);
            writeln!(
                out,
                "batch: {} complete, {} incomplete, {} infeasible, {} errored, {} panicked, \
                 {} timed out; wall {} ms, {throughput:.1} inst/sec",
                s.complete,
                s.incomplete,
                s.infeasible,
                s.errored,
                s.panicked,
                s.timed_out,
                s.batch_ms
            )
            .expect("writing");
            writeln!(out, "digest: {digest:016x}").expect("writing");
            if let Some(obs) = &batch.observation {
                if *metrics {
                    writeln!(out, "metrics:").expect("writing");
                    write!(out, "{}", obs.metrics.table()).expect("writing");
                    writeln!(out, "  {:<22} {}", "latency/ms", obs.latency).expect("writing");
                }
                if let Some(path) = trace {
                    let mut text = String::new();
                    for (instance, events) in paths.iter().zip(&obs.events) {
                        text.push_str(&trace_lines(instance, events));
                    }
                    std::fs::write(path, text).map_err(|e| ExecutionError::Io(path.clone(), e))?;
                    let total: usize = obs.events.iter().map(Vec::len).sum();
                    writeln!(out, "trace written to {path} ({total} events)").expect("writing");
                }
            }
            if let Some(path) = json {
                let mut pairs = vec![
                    ("router", Json::str(algorithm.name())),
                    ("jobs", Json::from(s.jobs)),
                    ("digest", Json::str(format!("{digest:016x}"))),
                    ("instances", Json::arr(records)),
                    (
                        "stats",
                        Json::obj([
                            ("complete", Json::from(s.complete)),
                            ("incomplete", Json::from(s.incomplete)),
                            ("infeasible", Json::from(s.infeasible)),
                            ("errored", Json::from(s.errored)),
                            ("panicked", Json::from(s.panicked)),
                            ("timed_out", Json::from(s.timed_out)),
                            ("failed_nets", Json::from(s.failed_nets)),
                            ("wirelength", Json::from(s.wirelength)),
                            ("vias", Json::from(s.vias)),
                            ("batch_ms", Json::from(s.batch_ms)),
                            ("busy_ms", Json::from(s.busy_ms)),
                            ("throughput_per_sec", Json::from(throughput)),
                        ]),
                    ),
                ];
                if let Some(obs) = &batch.observation {
                    pairs.push(("metrics", metrics_json(&obs.metrics)));
                }
                let doc =
                    versioned_doc("batch", pairs.into_iter().map(|(k, v)| (k.to_string(), v)));
                std::fs::write(path, doc.render())
                    .map_err(|e| ExecutionError::Io(path.clone(), e))?;
                writeln!(out, "json written to {path}").expect("writing");
            }
            Ok(all_good && s.complete == s.instances)
        }
        Command::Check { instance, routes, svg } => {
            let text = std::fs::read_to_string(instance)
                .map_err(|e| ExecutionError::Io(instance.clone(), e))?;
            let problem = format::parse_problem(&text)?;
            let routes_text = std::fs::read_to_string(routes)
                .map_err(|e| ExecutionError::Io(routes.clone(), e))?;
            let db = format::parse_routes(&problem, &routes_text)?;
            let report = verify(&problem, &db);
            let stats = db.stats();
            writeln!(
                out,
                "nets: {}, wire: {}, vias: {}",
                problem.nets().len(),
                stats.wirelength,
                stats.vias
            )
            .expect("writing");
            writeln!(out, "verify: {report}").expect("writing");
            if let Some(path) = svg {
                std::fs::write(path, render_svg(&db))
                    .map_err(|e| ExecutionError::Io(path.clone(), e))?;
                writeln!(out, "svg written to {path}").expect("writing");
            }
            Ok(report.is_clean())
        }
        Command::Channel { file, router, tracks, layers } => {
            if let Some(t) = tracks {
                if *t == 0 || *t > 4096 {
                    return Err(ExecutionError::Unroutable(format!(
                        "--tracks must be between 1 and 4096, got {t}"
                    )));
                }
            }
            let text =
                std::fs::read_to_string(file).map_err(|e| ExecutionError::Io(file.clone(), e))?;
            let spec = format::parse_channel(&text)?;
            writeln!(out, "{spec}").expect("writing");
            let fail = |e: RouteError| ExecutionError::Unroutable(e.to_string());
            if *layers == 3 && *router != ChannelRouterKind::Ripup {
                return Err(ExecutionError::Unroutable(
                    "only the rip-up router supports three-layer channels".to_string(),
                ));
            }
            match router {
                ChannelRouterKind::Lea => {
                    let sol = lea::route(&spec).map_err(fail)?;
                    writeln!(out, "left-edge: {} tracks", sol.tracks).expect("writing");
                }
                ChannelRouterKind::Dogleg => {
                    let sol = dogleg::route(&spec).map_err(fail)?;
                    writeln!(out, "dogleg: {} tracks", sol.tracks).expect("writing");
                }
                ChannelRouterKind::Greedy => {
                    let sol = greedy::route(&spec).map_err(fail)?;
                    writeln!(
                        out,
                        "greedy: {} tracks, {} extension columns",
                        sol.tracks, sol.extra_columns
                    )
                    .expect("writing");
                }
                ChannelRouterKind::Yacr => {
                    let sol = yacr::route(&spec, 8).map_err(fail)?;
                    writeln!(out, "yacr-style: {} tracks", sol.tracks).expect("writing");
                }
                ChannelRouterKind::Ripup => {
                    let density = spec.density().max(1) as usize;
                    let candidates: Vec<usize> = match tracks {
                        Some(t) => vec![*t],
                        None => (density..density + 9).collect(),
                    };
                    let router = MightyRouter::new(RouterConfig::default());
                    let mut done = false;
                    for t in candidates {
                        let problem = spec.to_problem_with_layers(t, *layers);
                        let outcome = router.route(&problem);
                        if outcome.is_complete() {
                            writeln!(out, "rip-up: {t} tracks").expect("writing");
                            done = true;
                            break;
                        }
                    }
                    if !done {
                        return Err(ExecutionError::Unroutable(
                            "rip-up could not route the channel within its track budget"
                                .to_string(),
                        ));
                    }
                }
            }
            Ok(true)
        }
    }
}

/// The name used for a switchbox router choice in reports.
fn switch_router_name(kind: SwitchRouterKind) -> &'static str {
    match kind {
        SwitchRouterKind::Ripup => "ripup",
        SwitchRouterKind::Lee => "lee",
        SwitchRouterKind::Tiled => "tiled",
    }
}

/// One per-instance batch record: `file`, then the shared
/// [`RouteOutcomeReport`] fields, then the elapsed time — the same
/// shape a serve route response carries.
fn record_json(path: &str, outcome: &RouteOutcomeReport, ms: u64) -> Json {
    let mut pairs = vec![("file".to_string(), Json::str(path))];
    pairs.extend(outcome.pairs());
    pairs.push(("ms".to_string(), Json::from(ms)));
    Json::Obj(pairs)
}

/// Loads an instance for analysis: sb format, or a saved `fuzzcase v1`
/// file (as written by `vroute fuzz --out`), sniffed by header.
fn load_instance(path: &str) -> Result<route_model::Problem, ExecutionError> {
    let text = std::fs::read_to_string(path).map_err(|e| ExecutionError::Io(path.to_owned(), e))?;
    let first = text
        .lines()
        .map(str::trim)
        .find(|l| !l.is_empty() && !l.starts_with('#'))
        .unwrap_or_default();
    if first.starts_with("fuzzcase") {
        let case = route_fuzz::FuzzCase::parse(&text)
            .map_err(|e| ExecutionError::Unroutable(format!("{path}: {e}")))?;
        case.try_build().ok_or_else(|| {
            ExecutionError::Unroutable(format!("{path}: case generates an invalid instance"))
        })
    } else {
        Ok(format::parse_problem(&text)?)
    }
}

/// The JSON object for one diagnostic, mirroring
/// [`route_analyze::render_json`]'s per-diagnostic schema.
fn diagnostic_json(d: &Diagnostic) -> Json {
    Json::obj([
        ("severity", Json::str(d.severity.to_string())),
        ("code", Json::str(d.code)),
        ("rule", Json::str(d.rule)),
        ("message", Json::str(d.message.as_str())),
        (
            "span",
            match &d.span {
                Some(s) => Json::obj([
                    (
                        "from",
                        Json::arr([
                            Json::from(i64::from(s.from.x)),
                            Json::from(i64::from(s.from.y)),
                        ]),
                    ),
                    (
                        "to",
                        Json::arr([Json::from(i64::from(s.to.x)), Json::from(i64::from(s.to.y))]),
                    ),
                    ("layer", s.layer.map_or(Json::Null, |l| Json::str(l.to_string()))),
                ]),
                None => Json::Null,
            },
        ),
        ("net", d.net.map_or(Json::Null, |n| Json::from(u64::from(n.0)))),
        ("hint", d.hint.as_deref().map_or(Json::Null, Json::str)),
    ])
}

/// Executes `vroute analyze`: runs the pre-route feasibility analysis
/// on the instance, and — when a saved routing is supplied — the
/// whole-database lint registry on top. With `--chip` the chip-scale
/// pass (F004–F006 plus the congestion map) runs instead of the flat
/// one. Exit is clean only when no error-severity diagnostic fired.
fn execute_analyze(
    instance: &str,
    routes: Option<&str>,
    chip_tile: Option<u32>,
    json: Option<&str>,
    out: &mut dyn fmt::Write,
) -> Result<bool, ExecutionError> {
    let problem = load_instance(instance)?;
    if let Some(tile) = chip_tile {
        return execute_analyze_chip(instance, &problem, tile, json, out);
    }
    let feasibility = analyze_problem(&problem);
    let mut diags: Vec<Diagnostic> = feasibility.diagnostics().to_vec();
    let mut linted = 0usize;
    if let Some(rpath) = routes {
        let text =
            std::fs::read_to_string(rpath).map_err(|e| ExecutionError::Io(rpath.to_owned(), e))?;
        let db = format::parse_routes(&problem, &text)?;
        let lint = lint_db(&problem, &db);
        linted = lint.findings().len();
        diags.extend_from_slice(lint.diagnostics());
        sort_diagnostics(&mut diags);
    }
    write!(out, "{}", render_text(&diags)).expect("writing");
    let verdict = if feasibility.is_feasible() { "feasible" } else { "infeasible" };
    writeln!(
        out,
        "analyze: {verdict}, {} certificate(s), {} lint finding(s)",
        feasibility.certificates().len(),
        linted
    )
    .expect("writing");
    let clean = diags.iter().all(|d| d.severity != Severity::Error);
    if let Some(path) = json {
        let pairs = [
            ("file", Json::str(instance)),
            ("feasible", Json::from(feasibility.is_feasible())),
            ("clean", Json::from(clean)),
            ("certificates", Json::from(feasibility.certificates().len())),
            ("lint_findings", Json::from(linted)),
            ("diagnostics", Json::arr(diags.iter().map(diagnostic_json))),
        ];
        let doc = versioned_doc("analyze", pairs.into_iter().map(|(k, v)| (k.to_string(), v)));
        std::fs::write(path, doc.render()).map_err(|e| ExecutionError::Io(path.to_owned(), e))?;
        writeln!(out, "json written to {path}").expect("writing");
    }
    Ok(clean)
}

/// Executes `vroute analyze --chip`: the chip-scale certificate pass
/// plus the static congestion map, reported as diagnostics, a heatmap
/// and per-net feature vectors.
fn execute_analyze_chip(
    instance: &str,
    problem: &route_model::Problem,
    tile: u32,
    json: Option<&str>,
    out: &mut dyn fmt::Write,
) -> Result<bool, ExecutionError> {
    let report = route_analyze::analyze_chip(problem, tile);
    write!(out, "{}", render_text(report.diagnostics())).expect("writing");
    let verdict = if report.is_feasible() { "feasible" } else { "infeasible" };
    writeln!(
        out,
        "analyze --chip: {verdict}, {} certificate(s), {} net(s) certified unroutable",
        report.certificates().len(),
        report.certified_nets().len()
    )
    .expect("writing");
    let map = report.congestion();
    let (pc, pr, peak) = map.peak();
    writeln!(
        out,
        "congestion: {}x{} tiles (tile {tile}), peak {}% at tile ({pc}, {pr})",
        map.cols(),
        map.rows(),
        peak.min(9999)
    )
    .expect("writing");
    let clean = report.is_feasible();
    if let Some(path) = json {
        // The heatmap saturates at 9999% so fully blocked tiles stay
        // finite in the report.
        let heatmap = Json::arr((0..map.rows()).map(|r| {
            Json::arr((0..map.cols()).map(|c| Json::from(map.congestion_at(c, r).min(9999))))
        }));
        let features = Json::arr(report.features().iter().map(|f| {
            Json::obj([
                ("net", Json::from(u64::from(f.net.0))),
                ("congestion", Json::from(f.congestion.min(9999))),
                ("pin_density", Json::from(f.pin_density)),
                ("bbox_area", Json::from(f.bbox_area)),
                ("crossings", Json::from(f.crossings)),
            ])
        }));
        let pairs = [
            ("file", Json::str(instance)),
            ("tile", Json::from(u64::from(tile))),
            ("feasible", Json::from(report.is_feasible())),
            ("clean", Json::from(clean)),
            ("certificates", Json::from(report.certificates().len())),
            ("certified_nets", Json::from(report.certified_nets().len())),
            (
                "congestion",
                Json::obj([
                    ("cols", Json::from(u64::from(map.cols()))),
                    ("rows", Json::from(u64::from(map.rows()))),
                    (
                        "peak",
                        Json::arr([
                            Json::from(u64::from(pc)),
                            Json::from(u64::from(pr)),
                            Json::from(peak.min(9999)),
                        ]),
                    ),
                    ("heatmap", heatmap),
                ]),
            ),
            ("features", features),
            ("diagnostics", Json::arr(report.diagnostics().iter().map(diagnostic_json))),
        ];
        let doc = versioned_doc("analyze-chip", pairs.into_iter().map(|(k, v)| (k.to_string(), v)));
        std::fs::write(path, doc.render()).map_err(|e| ExecutionError::Io(path.to_owned(), e))?;
        writeln!(out, "json written to {path}").expect("writing");
    }
    Ok(clean)
}

/// Executes `vroute fuzz`: sweeps a seed range and/or replays saved
/// case files through the differential oracles, optionally writing
/// minimized finding case files to a directory. Fault injection for
/// mutation testing is enabled through the `VROUTE_FUZZ_FAULT`
/// environment variable (`hide-failures` or `drop-trace`).
fn execute_fuzz(
    seeds: &Option<(u64, u64)>,
    cases: &[String],
    jobs: usize,
    shrink: bool,
    out_dir: Option<&str>,
    out: &mut dyn fmt::Write,
) -> Result<bool, ExecutionError> {
    use route_fuzz::{evaluate_case, run_fuzz, Fault, FuzzCase, FuzzConfig, RouterSet};

    let fault = match std::env::var("VROUTE_FUZZ_FAULT") {
        Ok(name) if !name.is_empty() => Some(Fault::from_name(&name).ok_or_else(|| {
            ExecutionError::Unroutable(format!(
                "VROUTE_FUZZ_FAULT: unknown fault `{name}` \
                 (known: hide-failures, drop-trace)"
            ))
        })?),
        _ => None,
    };
    if let Some(fault) = fault {
        writeln!(out, "fault injection active: {}", fault.name()).expect("writing report");
    }
    let mut clean = true;

    // Replay saved case files: every one must pass every oracle.
    if !cases.is_empty() {
        let routers = RouterSet::standard(fault);
        for path in cases {
            let text =
                std::fs::read_to_string(path).map_err(|e| ExecutionError::Io(path.clone(), e))?;
            let case = FuzzCase::parse(&text)
                .map_err(|e| ExecutionError::Unroutable(format!("{path}: {e}")))?;
            let violations = evaluate_case(&case, &routers, jobs);
            if violations.is_empty() {
                writeln!(out, "{path}: {case}: ok").expect("writing report");
            } else {
                clean = false;
                writeln!(out, "{path}: {case}: {} violation(s)", violations.len())
                    .expect("writing report");
                for v in &violations {
                    writeln!(out, "  {v}").expect("writing report");
                }
            }
        }
    }

    if let Some((start, end)) = *seeds {
        let config = FuzzConfig { start, end, jobs, shrink, fault, ..FuzzConfig::default() };
        let outcome = run_fuzz(&config, &mut |line| {
            writeln!(out, "{line}").expect("writing report");
        });
        writeln!(
            out,
            "fuzzed {} instance(s) over seeds {start}..{end}: {} complete, {} finding(s)",
            outcome.instances,
            outcome.complete,
            outcome.findings.len()
        )
        .expect("writing report");
        if !outcome.findings.is_empty() {
            if let Some(dir) = out_dir {
                std::fs::create_dir_all(dir).map_err(|e| ExecutionError::Io(dir.to_string(), e))?;
                for finding in &outcome.findings {
                    let (case, violations) = match &finding.shrunk {
                        Some(s) => (&s.case, &s.violations),
                        None => (&finding.case, &finding.violations),
                    };
                    let mut text = format!("# vroute fuzz finding, seed {}\n", finding.seed);
                    for v in violations {
                        text.push_str(&format!("# {v}\n"));
                    }
                    text.push_str(&case.write());
                    let path = format!("{dir}/seed-{}.case", finding.seed);
                    std::fs::write(&path, text).map_err(|e| ExecutionError::Io(path.clone(), e))?;
                    writeln!(out, "wrote {path}").expect("writing report");
                }
            }
        }
        clean &= outcome.is_clean();
    }

    writeln!(out, "{}", if clean { "all oracles passed" } else { "ORACLE VIOLATIONS FOUND" })
        .expect("writing report");
    Ok(clean)
}

/// The supervised-recovery configuration of one `vroute batch` run.
struct SupervisedSpec<'a> {
    router: BatchRouterKind,
    jobs: usize,
    deadline_ms: Option<u64>,
    analyze: bool,
    retries: u32,
    fallback: &'a [BatchRouterKind],
    journal: Option<&'a str>,
    resume: bool,
    json: Option<&'a str>,
    frontier: mighty::FrontierKind,
}

/// Executes `vroute batch` through the supervised recovery engine:
/// retries with budget escalation, an optional fallback router chain,
/// partial-result salvage, and a crash-safe resumable run journal.
/// Fault injection for the recovery paths is enabled through the
/// `VROUTE_FAULT` environment variable (`KIND[@INSTANCES[@ATTEMPTS]]`,
/// e.g. `fail@1,4@1`).
///
/// The JSON report deliberately excludes wall-clock fields and the
/// resumed-skip counter, so a killed-and-resumed run reproduces the
/// uninterrupted run's report byte for byte.
fn execute_batch_supervised(
    paths: &[String],
    problems: &[route_model::Problem],
    fingerprints: &[u64],
    spec: &SupervisedSpec<'_>,
    out: &mut dyn fmt::Write,
) -> Result<bool, ExecutionError> {
    let policy = RetryPolicy::with_retries(spec.retries);
    let ripup_cfg = RouterConfig { frontier: spec.frontier, ..RouterConfig::default() };
    let mut sup = match spec.router {
        BatchRouterKind::Ripup => Supervisor::new(ripup_cfg, policy),
        kind => Supervisor::with_primary(batch_router(kind, spec.frontier), policy),
    };
    let mut chain = FallbackChain::none();
    for kind in spec.fallback {
        chain.push(batch_router(*kind, spec.frontier));
    }
    if !chain.is_empty() {
        sup = sup.with_fallbacks(chain);
    }
    if let Ok(fault) = std::env::var("VROUTE_FAULT") {
        if !fault.is_empty() {
            let plan = FaultPlan::parse(&fault)
                .map_err(|e| ExecutionError::Unroutable(format!("VROUTE_FAULT: {e}")))?;
            writeln!(out, "fault injection active: {fault}").expect("writing");
            sup = sup.with_fault(plan);
        }
    }
    let instances: Vec<(String, u64)> =
        paths.iter().cloned().zip(fingerprints.iter().copied()).collect();
    let journal = match spec.journal {
        Some(dir) => {
            let dir = std::path::Path::new(dir);
            let j = if spec.resume {
                RunJournal::resume(dir, &instances)
            } else {
                RunJournal::create(dir, &instances)
            }
            .map_err(|e| ExecutionError::Io(dir.display().to_string(), e))?;
            Some(j)
        }
        None => None,
    };
    let engine = RouteEngine::new(EngineConfig {
        jobs: spec.jobs,
        deadline: spec.deadline_ms.map(std::time::Duration::from_millis),
        observe: ObserveMode::Off,
        precheck: spec.analyze,
    });
    let batch = engine.route_batch_supervised(&sup, problems, journal.as_ref());
    let s = &batch.stats;
    writeln!(
        out,
        "router: {} (supervised, retries {}, fallbacks {}), jobs: {}, instances: {}",
        sup.primary_name(),
        spec.retries,
        spec.fallback.len(),
        s.jobs,
        s.instances
    )
    .expect("writing");
    // The same order-sensitive FNV-1a fold as the plain batch, over the
    // deterministic per-instance record fields only.
    let mut digest = 0xcbf2_9ce4_8422_2325u64;
    let mut records = Vec::with_capacity(paths.len());
    for (i, (path, entry)) in paths.iter().zip(&batch.entries).enumerate() {
        let resumed = if batch.outcomes[i].is_none() { " (resumed)" } else { "" };
        let status = entry.status.as_str();
        let route_path = entry.path.encode();
        let sum = entry.checksum.unwrap_or(0);
        digest = fnv_str(digest, status);
        digest = fnv_str(digest, &route_path);
        digest = fnv_fold(digest, u64::from(entry.attempts));
        digest = fnv_fold(digest, sum);
        digest = fnv_fold(digest, entry.wire);
        digest = fnv_fold(digest, entry.vias);
        digest = fnv_fold(digest, entry.failed_nets as u64);
        if let Some(e) = &entry.error {
            digest = fnv_str(digest, e);
        }
        match entry.status {
            InstanceStatus::Complete => writeln!(
                out,
                "  {path}: complete via {route_path}, {} attempt(s), wire {}, vias {}, \
                 checksum {sum:016x}{resumed}",
                entry.attempts, entry.wire, entry.vias
            ),
            InstanceStatus::Salvaged => writeln!(
                out,
                "  {path}: salvaged, {} net(s) unrouted, lint {}, checksum {sum:016x}, \
                 after {} attempt(s): {}{resumed}",
                entry.failed_nets,
                entry.lint_findings.unwrap_or(0),
                entry.attempts,
                entry.error.as_deref().unwrap_or("unknown"),
            ),
            InstanceStatus::Infeasible => writeln!(
                out,
                "  {path}: infeasible: {}{resumed}",
                entry.error.as_deref().unwrap_or("certified")
            ),
            _ => writeln!(
                out,
                "  {path}: {status} after {} attempt(s): {}{resumed}",
                entry.attempts,
                entry.error.as_deref().unwrap_or("unknown")
            ),
        }
        .expect("writing");
        let mut pairs = vec![
            ("file", Json::str(path.as_str())),
            ("status", Json::str(status)),
            ("path", Json::str(route_path)),
            ("attempts", Json::from(u64::from(entry.attempts))),
        ];
        if entry.checksum.is_some() {
            pairs.push(("wire", Json::from(entry.wire)));
            pairs.push(("vias", Json::from(entry.vias)));
            pairs.push(("checksum", Json::str(format!("{sum:016x}"))));
        }
        if entry.status == InstanceStatus::Salvaged {
            pairs.push(("failed_nets", Json::from(entry.failed_nets as u64)));
            pairs.push(("lint", Json::from(entry.lint_findings.unwrap_or(0))));
        }
        if entry.status != InstanceStatus::Complete {
            if let Some(e) = &entry.error {
                pairs.push(("error", Json::str(e.as_str())));
            }
        }
        records.push(Json::obj(pairs));
    }
    writeln!(
        out,
        "batch: {} complete, {} salvaged, {} infeasible, {} errored, {} panicked, \
         {} timed out; {} retried, {} fell back, {} resumed",
        s.complete,
        s.salvaged,
        s.infeasible,
        s.errored,
        s.panicked,
        s.timed_out,
        s.retried,
        s.fell_back,
        s.resumed_skips
    )
    .expect("writing");
    writeln!(out, "digest: {digest:016x}").expect("writing");
    if let Some(j) = &journal {
        if let Some(e) = j.take_error() {
            return Err(ExecutionError::Unroutable(format!("journal write failed: {e}")));
        }
        writeln!(out, "journal: {}", j.path().display()).expect("writing");
    }
    if let Some(path) = spec.json {
        let pairs = [
            ("router", Json::str(batch_router_name(spec.router))),
            ("jobs", Json::from(s.jobs)),
            ("retries", Json::from(u64::from(spec.retries))),
            (
                "fallbacks",
                Json::arr(spec.fallback.iter().map(|k| Json::str(batch_router_name(*k)))),
            ),
            ("digest", Json::str(format!("{digest:016x}"))),
            ("instances", Json::arr(records)),
            (
                "stats",
                Json::obj([
                    ("complete", Json::from(s.complete)),
                    ("salvaged", Json::from(s.salvaged)),
                    ("infeasible", Json::from(s.infeasible)),
                    ("errored", Json::from(s.errored)),
                    ("panicked", Json::from(s.panicked)),
                    ("timed_out", Json::from(s.timed_out)),
                    ("retried", Json::from(s.retried)),
                    ("fell_back", Json::from(s.fell_back)),
                    ("failed_nets", Json::from(s.failed_nets)),
                    ("wirelength", Json::from(s.wirelength)),
                    ("vias", Json::from(s.vias)),
                ]),
            ),
        ];
        let doc = versioned_doc("batch", pairs.into_iter().map(|(k, v)| (k.to_string(), v)));
        std::fs::write(path, doc.render()).map_err(|e| ExecutionError::Io(path.to_owned(), e))?;
        writeln!(out, "json written to {path}").expect("writing");
    }
    Ok(s.complete == s.instances)
}

/// The name used for a batch router choice in reports.
pub(crate) fn batch_router_name(kind: BatchRouterKind) -> &'static str {
    match kind {
        BatchRouterKind::Ripup => "ripup",
        BatchRouterKind::Lee => "lee",
        BatchRouterKind::Lea => "lea",
        BatchRouterKind::Dogleg => "dogleg",
        BatchRouterKind::Greedy => "greedy",
        BatchRouterKind::Yacr => "yacr",
        BatchRouterKind::Swbox => "swbox",
    }
}

/// The unified trait object for a batch router choice.
fn batch_router(
    kind: BatchRouterKind,
    frontier: mighty::FrontierKind,
) -> Box<dyn DetailedRouter + Sync> {
    match kind {
        BatchRouterKind::Ripup => {
            Box::new(MightyRouter::new(RouterConfig { frontier, ..RouterConfig::default() }))
        }
        BatchRouterKind::Lee => Box::new(LeeRouter::default()),
        BatchRouterKind::Lea => Box::new(route_channel::LeaRouter),
        BatchRouterKind::Dogleg => Box::new(route_channel::DoglegRouter),
        BatchRouterKind::Greedy => Box::new(route_channel::GreedyRouter),
        BatchRouterKind::Yacr => Box::new(route_channel::YacrRouter::default()),
        BatchRouterKind::Swbox => Box::new(route_channel::SwboxRouter),
    }
}

/// Folds one value into an FNV-1a digest.
fn fnv_fold(mut h: u64, v: u64) -> u64 {
    for byte in v.to_le_bytes() {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Folds a string into an FNV-1a digest.
fn fnv_str(mut h: u64, s: &str) -> u64 {
    for byte in s.bytes() {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_args;

    fn run(line: &str) -> (String, Result<bool, ExecutionError>) {
        let cmd = parse_args(line.split_whitespace().map(str::to_owned)).expect("parses");
        let mut out = String::new();
        let result = execute(&cmd, &mut out);
        (out, result)
    }

    #[test]
    fn help_prints_usage() {
        let (out, ok) = run("help");
        assert!(ok.unwrap());
        assert!(out.contains("USAGE"));
    }

    #[test]
    fn chip_routes_and_reports_json() {
        let dir = std::env::temp_dir().join("vroute-test-chip");
        std::fs::create_dir_all(&dir).unwrap();
        let json = dir.join("chip.json");
        let line = format!(
            "chip --width 40 --height 40 --nets 90 --macros 2 --seed 5 --tile 10 --json {}",
            json.display()
        );
        let (out, result) = run(&line);
        result.expect("chip executes");
        assert!(out.contains("tiles: 4x4"), "{out}");
        assert!(out.contains("stitch:"), "{out}");
        let doc = std::fs::read_to_string(&json).unwrap();
        assert!(doc.contains("\"command\": \"chip\""), "{doc}");
        assert!(doc.contains("\"legal\": true"), "{doc}");
        assert!(doc.contains("\"checksum\""), "{doc}");
        // The job count never changes the routed database.
        let (one, _) = run(&format!("{line} --jobs 1"));
        let (four, _) = run(&format!("{line} --jobs 4"));
        let checksum = |s: &str| {
            let line = s.lines().find(|l| l.contains("checksum")).expect("prints checksum");
            let word = line.split_whitespace().skip_while(|w| *w != "checksum").nth(1);
            word.expect("checksum value").trim_end_matches(',').to_owned()
        };
        assert_eq!(checksum(&one), checksum(&four));
    }

    #[test]
    fn gen_then_route_round_trip() {
        let dir = std::env::temp_dir().join("vroute-test-gen");
        std::fs::create_dir_all(&dir).unwrap();
        let sb = dir.join("box.sb");
        let (instance, ok) = run("gen switchbox --width 10 --height 8 --nets 5 --seed 4");
        assert!(ok.unwrap());
        std::fs::write(&sb, instance).unwrap();

        let (out, ok) = run(&format!("route {} --ascii", sb.display()));
        assert!(ok.unwrap(), "generated box routes:\n{out}");
        assert!(out.contains("verify: clean"), "{out}");
        assert!(out.contains("M1"), "ascii printed: {out}");
    }

    #[test]
    fn route_with_svg_and_optimize() {
        let dir = std::env::temp_dir().join("vroute-test-svg");
        std::fs::create_dir_all(&dir).unwrap();
        let sb = dir.join("box.sb");
        let svg = dir.join("box.svg");
        let (instance, _) = run("gen switchbox --width 10 --height 8 --nets 5 --seed 4");
        std::fs::write(&sb, instance).unwrap();

        let (out, ok) = run(&format!("route {} --svg {} --optimize", sb.display(), svg.display()));
        assert!(ok.unwrap(), "{out}");
        assert!(out.contains("cleanup:"), "{out}");
        let svg_text = std::fs::read_to_string(&svg).unwrap();
        assert!(svg_text.starts_with("<svg"));
    }

    #[test]
    fn three_layer_channel_via_cli() {
        let dir = std::env::temp_dir().join("vroute-test-3l");
        std::fs::create_dir_all(&dir).unwrap();
        let ch = dir.join("c.ch");
        let (instance, _) = run("gen channel --width 20 --nets 8 --window 8 --seed 1");
        std::fs::write(&ch, instance).unwrap();
        let (out, ok) = run(&format!("channel {} --layers 3", ch.display()));
        assert!(ok.unwrap(), "{out}");
        // Baselines reject the third layer with a clear message.
        let (_, result) = run(&format!("channel {} --layers 3 --router greedy", ch.display()));
        assert!(matches!(result, Err(ExecutionError::Unroutable(_))));
    }

    #[test]
    fn channel_pipeline() {
        let dir = std::env::temp_dir().join("vroute-test-ch");
        std::fs::create_dir_all(&dir).unwrap();
        let ch = dir.join("c.ch");
        let (instance, _) = run("gen channel --width 20 --nets 8 --window 8 --seed 1");
        std::fs::write(&ch, instance).unwrap();

        for router in ["greedy", "yacr", "ripup"] {
            let (out, ok) = run(&format!("channel {} --router {router}", ch.display()));
            assert!(ok.unwrap(), "{router} failed:\n{out}");
            assert!(out.contains("tracks"), "{out}");
        }
    }

    #[test]
    fn tiled_router_routes_a_larger_box() {
        let dir = std::env::temp_dir().join("vroute-test-tiled");
        std::fs::create_dir_all(&dir).unwrap();
        let sb = dir.join("big.sb");
        let (instance, _) = run("gen switchbox --width 40 --height 40 --nets 16 --seed 2");
        std::fs::write(&sb, instance).unwrap();
        let (out, ok) = run(&format!("route {} --router tiled", sb.display()));
        assert!(ok.unwrap(), "{out}");
        assert!(out.contains("hierarchical"), "{out}");
        assert!(out.contains("verify: clean"), "{out}");
    }

    #[test]
    fn save_then_check_round_trip() {
        let dir = std::env::temp_dir().join("vroute-test-check");
        std::fs::create_dir_all(&dir).unwrap();
        let sb = dir.join("box.sb");
        let routes = dir.join("box.routes");
        let (instance, _) = run("gen switchbox --width 10 --height 8 --nets 5 --seed 4");
        std::fs::write(&sb, instance).unwrap();

        let (out, ok) = run(&format!("route {} --save {}", sb.display(), routes.display()));
        assert!(ok.unwrap(), "{out}");
        assert!(out.contains("routes written"), "{out}");

        let (out, ok) = run(&format!("check {} {}", sb.display(), routes.display()));
        assert!(ok.unwrap(), "saved routing verifies clean:\n{out}");
        assert!(out.contains("verify: clean"), "{out}");

        // Tampering with the routing is caught: drop a line.
        let text = std::fs::read_to_string(&routes).unwrap();
        let truncated: Vec<&str> = text.lines().filter(|l| !l.starts_with("trace")).collect();
        std::fs::write(&routes, truncated.join("\n")).unwrap();
        let (out, ok) = run(&format!("check {} {}", sb.display(), routes.display()));
        assert!(!ok.unwrap(), "incomplete routing must not verify clean:\n{out}");
    }

    /// The digest line of a batch run, with timing noise excluded.
    fn digest_of(output: &str) -> String {
        output
            .lines()
            .find(|l| l.starts_with("digest:"))
            .unwrap_or_else(|| panic!("no digest in:\n{output}"))
            .to_owned()
    }

    #[test]
    fn batch_is_bit_identical_across_thread_counts() {
        let dir = std::env::temp_dir().join("vroute-test-batch");
        std::fs::create_dir_all(&dir).unwrap();
        let mut list = String::new();
        for seed in 0..64 {
            let (instance, _) =
                run(&format!("gen switchbox --width 10 --height 8 --nets 5 --seed {seed}"));
            let path = dir.join(format!("b{seed}.sb"));
            std::fs::write(&path, instance).unwrap();
            list.push_str(&format!("{}\n", path.display()));
        }
        let listfile = dir.join("all.txt");
        std::fs::write(&listfile, format!("# 64 instances\n{list}")).unwrap();

        let (serial, ok) = run(&format!("batch --list {} --jobs 1", listfile.display()));
        assert!(ok.unwrap(), "serial batch completes:\n{serial}");
        let (parallel, ok) = run(&format!("batch --list {} --jobs 8", listfile.display()));
        assert!(ok.unwrap(), "parallel batch completes:\n{parallel}");
        assert_eq!(digest_of(&serial), digest_of(&parallel));
        assert!(parallel.contains("jobs: 8"), "{parallel}");
    }

    #[test]
    fn batch_json_report() {
        let dir = std::env::temp_dir().join("vroute-test-batch-json");
        std::fs::create_dir_all(&dir).unwrap();
        let (instance, _) = run("gen switchbox --width 10 --height 8 --nets 5 --seed 4");
        let sb = dir.join("box.sb");
        std::fs::write(&sb, instance).unwrap();
        let report = dir.join("report.json");
        let (out, ok) = run(&format!(
            "batch {} {} --router lee --json {}",
            sb.display(),
            sb.display(),
            report.display()
        ));
        assert!(ok.unwrap(), "{out}");
        let text = std::fs::read_to_string(&report).unwrap();
        assert!(text.contains("\"router\": \"lee\""), "{text}");
        assert!(text.contains("\"complete\": 2"), "{text}");
        assert!(text.contains("\"digest\""), "{text}");
    }

    #[test]
    fn batch_of_channel_problems_through_channel_adapters() {
        // Channel-shaped grid instances route through the unified trait
        // with a channel baseline.
        let dir = std::env::temp_dir().join("vroute-test-batch-ch");
        std::fs::create_dir_all(&dir).unwrap();
        let (instance, _) = run("gen channel --width 20 --nets 8 --window 8 --seed 1");
        let spec = route_benchdata::format::parse_channel(&instance).unwrap();
        let problem = spec.to_problem(spec.density() as usize + 4);
        let sb = dir.join("chan.sb");
        std::fs::write(&sb, format::write_problem(&problem)).unwrap();
        let (out, ok) = run(&format!("batch {} --router yacr", sb.display()));
        assert!(ok.unwrap(), "{out}");
        assert!(out.contains("complete"), "{out}");
        // A switchbox instance is cleanly rejected by the same adapter.
        let (instance, _) = run("gen switchbox --width 10 --height 8 --nets 5 --seed 4");
        let plain = dir.join("box.sb");
        std::fs::write(&plain, instance).unwrap();
        let (out, ok) = run(&format!("batch {} --router lea", plain.display()));
        assert!(!ok.unwrap(), "{out}");
        assert!(out.contains("error: unsupported"), "{out}");
    }

    #[test]
    fn route_metrics_trace_and_json() {
        let dir = std::env::temp_dir().join("vroute-test-observe");
        std::fs::create_dir_all(&dir).unwrap();
        let sb = dir.join("box.sb");
        let trace = dir.join("box.ldj");
        let report = dir.join("box.json");
        let (instance, _) = run("gen switchbox --width 10 --height 8 --nets 5 --seed 4");
        std::fs::write(&sb, instance).unwrap();

        let (out, ok) = run(&format!(
            "route {} --metrics --trace {} --json {}",
            sb.display(),
            trace.display(),
            report.display()
        ));
        assert!(ok.unwrap(), "{out}");
        assert!(out.contains("metrics:"), "{out}");
        assert!(out.contains("nets committed"), "{out}");
        assert!(out.contains("trace written"), "{out}");

        let lines = std::fs::read_to_string(&trace).unwrap();
        assert!(lines.lines().count() >= 5 * 2, "scheduled + terminal per net:\n{lines}");
        assert!(lines.lines().all(|l| l.starts_with("{\"ev\":")), "{lines}");
        assert!(lines.contains("\"ev\":\"net_committed\""), "{lines}");

        let text = std::fs::read_to_string(&report).unwrap();
        assert!(text.contains("\"nets_committed\": 5"), "{text}");
        assert!(text.contains("\"expanded\""), "{text}");
        assert!(text.contains("\"checksum\""), "{text}");
    }

    #[test]
    fn observed_route_matches_unobserved_checksum() {
        let dir = std::env::temp_dir().join("vroute-test-observe-eq");
        std::fs::create_dir_all(&dir).unwrap();
        let sb = dir.join("box.sb");
        let routes = dir.join("plain.routes");
        let routes_obs = dir.join("observed.routes");
        let (instance, _) = run("gen switchbox --width 12 --height 10 --nets 7 --seed 9");
        std::fs::write(&sb, instance).unwrap();

        let (_, ok) = run(&format!("route {} --save {}", sb.display(), routes.display()));
        assert!(ok.unwrap());
        let (_, ok) =
            run(&format!("route {} --metrics --save {}", sb.display(), routes_obs.display()));
        assert!(ok.unwrap());
        assert_eq!(
            std::fs::read_to_string(&routes).unwrap(),
            std::fs::read_to_string(&routes_obs).unwrap(),
            "observation must not change the routing"
        );
    }

    #[test]
    fn tiled_route_synthesizes_summary_trace() {
        let dir = std::env::temp_dir().join("vroute-test-observe-tiled");
        std::fs::create_dir_all(&dir).unwrap();
        let sb = dir.join("big.sb");
        let trace = dir.join("big.ldj");
        let (instance, _) = run("gen switchbox --width 40 --height 40 --nets 16 --seed 2");
        std::fs::write(&sb, instance).unwrap();
        let (out, ok) =
            run(&format!("route {} --router tiled --trace {}", sb.display(), trace.display()));
        assert!(ok.unwrap(), "{out}");
        let lines = std::fs::read_to_string(&trace).unwrap();
        assert_eq!(
            lines.matches("\"ev\":\"net_scheduled\"").count(),
            16,
            "one scheduled event per net:\n{lines}"
        );
        assert_eq!(lines.matches("\"ev\":\"net_committed\"").count(), 16, "{lines}");
    }

    #[test]
    fn batch_metrics_and_trace() {
        let dir = std::env::temp_dir().join("vroute-test-batch-observe");
        std::fs::create_dir_all(&dir).unwrap();
        let mut files = String::new();
        for seed in 0..4 {
            let (instance, _) =
                run(&format!("gen switchbox --width 10 --height 8 --nets 5 --seed {seed}"));
            let path = dir.join(format!("m{seed}.sb"));
            std::fs::write(&path, instance).unwrap();
            files.push_str(&format!("{} ", path.display()));
        }
        let trace = dir.join("batch.ldj");
        let report = dir.join("batch.json");
        let (out, ok) = run(&format!(
            "batch {files} --metrics --trace {} --json {}",
            trace.display(),
            report.display()
        ));
        assert!(ok.unwrap(), "{out}");
        assert!(out.contains("metrics:"), "{out}");
        assert!(out.contains("nets scheduled"), "{out}");
        assert!(out.contains("latency/ms"), "{out}");

        // Every instance's events land in the trace, tagged by path.
        let lines = std::fs::read_to_string(&trace).unwrap();
        for seed in 0..4 {
            assert!(lines.contains(&format!("m{seed}.sb")), "{lines}");
        }
        // The JSON report carries observer-sourced counters.
        let text = std::fs::read_to_string(&report).unwrap();
        assert!(text.contains("\"metrics\""), "{text}");
        assert!(text.contains("\"nets_committed\": 20"), "{text}");
        assert!(text.contains("\"weak_modifications\""), "{text}");
        assert!(text.contains("\"strong_ripups\""), "{text}");
    }

    #[test]
    fn batch_observation_keeps_the_digest() {
        let dir = std::env::temp_dir().join("vroute-test-batch-observe-eq");
        std::fs::create_dir_all(&dir).unwrap();
        let (instance, _) = run("gen switchbox --width 12 --height 10 --nets 6 --seed 7");
        let sb = dir.join("box.sb");
        std::fs::write(&sb, instance).unwrap();
        let (plain, ok) = run(&format!("batch {}", sb.display()));
        assert!(ok.unwrap(), "{plain}");
        let (observed, ok) = run(&format!("batch {} --metrics", sb.display()));
        assert!(ok.unwrap(), "{observed}");
        assert_eq!(digest_of(&plain), digest_of(&observed));
    }

    #[test]
    fn region_instance_routes() {
        let dir = std::env::temp_dir().join("vroute-test-region");
        std::fs::create_dir_all(&dir).unwrap();
        let f = dir.join("l.sb");
        std::fs::write(&f, "region 0 0 12 4\nregion 0 0 4 12\nnet a 1 11 M2  11 1 M1\n").unwrap();
        let (out, ok) = run(&format!("route {}", f.display()));
        assert!(ok.unwrap(), "L-region routes:\n{out}");
        assert!(out.contains("verify: clean"), "{out}");
    }

    /// An sb instance with a full-height, all-layer wall separating the
    /// single net's pins: provably unroutable.
    const WALLED_SB: &str = "sb 5 4\n\
        obstacle 2 0\nobstacle 2 1\nobstacle 2 2\nobstacle 2 3\n\
        net a 0 1 M1  4 2 M1\n";

    #[test]
    fn analyze_passes_a_feasible_instance_and_lints_its_routing() {
        let dir = std::env::temp_dir().join("vroute-test-analyze");
        std::fs::create_dir_all(&dir).unwrap();
        let sb = dir.join("box.sb");
        let routes = dir.join("box.routes");
        let report = dir.join("analyze.json");
        let (instance, _) = run("gen switchbox --width 10 --height 8 --nets 5 --seed 4");
        std::fs::write(&sb, instance).unwrap();

        let (out, ok) = run(&format!("analyze {}", sb.display()));
        assert!(ok.unwrap(), "{out}");
        assert!(out.contains("analyze: feasible, 0 certificate(s)"), "{out}");

        let (_, ok) = run(&format!("route {} --save {}", sb.display(), routes.display()));
        assert!(ok.unwrap());
        let (out, ok) = run(&format!(
            "analyze {} {} --json {}",
            sb.display(),
            routes.display(),
            report.display()
        ));
        assert!(ok.unwrap(), "a clean routing lints clean:\n{out}");
        let text = std::fs::read_to_string(&report).unwrap();
        assert!(text.contains("\"feasible\": true"), "{text}");
        assert!(text.contains("\"diagnostics\": []"), "{text}");
    }

    #[test]
    fn analyze_certifies_an_infeasible_instance() {
        let dir = std::env::temp_dir().join("vroute-test-analyze-inf");
        std::fs::create_dir_all(&dir).unwrap();
        let sb = dir.join("walled.sb");
        let report = dir.join("walled.json");
        std::fs::write(&sb, WALLED_SB).unwrap();

        let (out, ok) = run(&format!("analyze {} --json {}", sb.display(), report.display()));
        assert!(!ok.unwrap(), "a certificate must fail the exit code:\n{out}");
        assert!(out.contains("error[F"), "{out}");
        assert!(out.contains("analyze: infeasible"), "{out}");
        let text = std::fs::read_to_string(&report).unwrap();
        assert!(text.contains("\"feasible\": false"), "{text}");
        assert!(text.contains("\"severity\": \"error\""), "{text}");
    }

    #[test]
    fn route_analyze_gate_refuses_infeasible_instances() {
        let dir = std::env::temp_dir().join("vroute-test-route-gate");
        std::fs::create_dir_all(&dir).unwrap();
        let sb = dir.join("walled.sb");
        std::fs::write(&sb, WALLED_SB).unwrap();

        let cmd = format!("route {} --analyze", sb.display());
        let parsed = parse_args(cmd.split_whitespace().map(str::to_owned)).unwrap();
        let mut out = String::new();
        let result = execute(&parsed, &mut out);
        match result {
            Err(ExecutionError::Unroutable(msg)) => {
                assert!(msg.contains("provably infeasible"), "{msg}");
            }
            other => panic!("expected an infeasibility refusal, got {other:?}\n{out}"),
        }
        assert!(out.contains("error[F"), "diagnostics printed before refusing:\n{out}");

        // A feasible instance passes the gate and lints after routing.
        let good = dir.join("good.sb");
        let (instance, _) = run("gen switchbox --width 10 --height 8 --nets 5 --seed 4");
        std::fs::write(&good, instance).unwrap();
        let (out, ok) = run(&format!("route {} --analyze", good.display()));
        assert!(ok.unwrap(), "{out}");
        assert!(out.contains("analyze: feasible"), "{out}");
        assert!(out.contains("lint:"), "{out}");
    }

    #[test]
    fn batch_analyze_skips_infeasible_instances() {
        let dir = std::env::temp_dir().join("vroute-test-batch-inf");
        std::fs::create_dir_all(&dir).unwrap();
        let walled = dir.join("walled.sb");
        std::fs::write(&walled, WALLED_SB).unwrap();
        let good = dir.join("good.sb");
        let (instance, _) = run("gen switchbox --width 10 --height 8 --nets 5 --seed 4");
        std::fs::write(&good, instance).unwrap();
        let report = dir.join("batch.json");

        let (out, ok) = run(&format!(
            "batch {} {} --analyze --jobs 1 --json {}",
            good.display(),
            walled.display(),
            report.display()
        ));
        assert!(!ok.unwrap(), "an infeasible instance is not a complete batch:\n{out}");
        assert!(out.contains("infeasible:"), "{out}");
        assert!(out.contains("1 complete, 0 incomplete, 1 infeasible"), "{out}");
        let text = std::fs::read_to_string(&report).unwrap();
        assert!(text.contains("\"status\": \"infeasible\""), "{text}");
        assert!(text.contains("\"reason\""), "{text}");
        assert!(text.contains("\"infeasible\": 1"), "{text}");

        // Without --analyze the router burns its budget and reports the
        // net as failed instead: incomplete, not infeasible.
        let (out, ok) = run(&format!("batch {} --jobs 1", walled.display()));
        assert!(!ok.unwrap(), "{out}");
        assert!(out.contains("0 complete, 1 incomplete, 0 infeasible"), "{out}");
    }

    #[test]
    fn analyze_accepts_fuzzcase_files() {
        let dir = std::env::temp_dir().join("vroute-test-analyze-case");
        std::fs::create_dir_all(&dir).unwrap();
        let case = dir.join("seed.case");
        std::fs::write(
            &case,
            "# a finding header comment\n\
             fuzzcase v1\nfamily switchbox\nwidth 8\nheight 6\nnets 2\nseed 11\n",
        )
        .unwrap();
        let (out, ok) = run(&format!("analyze {}", case.display()));
        assert!(ok.unwrap(), "a generated case analyzes:\n{out}");
        assert!(out.contains("analyze: feasible"), "{out}");
    }

    #[test]
    fn missing_file_reports_io_error() {
        let (_, result) = run("route /nonexistent/really.sb");
        assert!(matches!(result, Err(ExecutionError::Io(_, _))));
    }

    #[test]
    fn bad_instance_reports_parse_error() {
        let dir = std::env::temp_dir().join("vroute-test-bad");
        std::fs::create_dir_all(&dir).unwrap();
        let f = dir.join("bad.sb");
        std::fs::write(&f, "nonsense here").unwrap();
        let (_, result) = run(&format!("route {}", f.display()));
        assert!(matches!(result, Err(ExecutionError::Parse(_))));
    }

    /// Serializes the fuzz tests: `VROUTE_FUZZ_FAULT` is process-global
    /// state, so the clean-window test must not observe the fault-
    /// injection test's environment.
    static FUZZ_ENV: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn fuzz_clean_window_passes() {
        let _guard = FUZZ_ENV.lock().unwrap();
        std::env::remove_var("VROUTE_FUZZ_FAULT");
        let (out, ok) = run("fuzz --seeds 0..6 --jobs 1");
        assert!(ok.unwrap(), "{out}");
        assert!(out.contains("fuzzed 6 instance(s)"), "{out}");
        assert!(out.contains("all oracles passed"), "{out}");
    }

    #[test]
    fn fuzz_finds_injected_fault_shrinks_and_replays() {
        let _guard = FUZZ_ENV.lock().unwrap();
        let dir = std::env::temp_dir().join("vroute-test-fuzz");
        let _ = std::fs::remove_dir_all(&dir);

        std::env::set_var("VROUTE_FUZZ_FAULT", "drop-trace");
        let (out, ok) =
            run(&format!("fuzz --seeds 0..6 --jobs 1 --shrink --out {}", dir.display()));
        assert!(!ok.unwrap(), "the injected fault must be caught:\n{out}");
        assert!(out.contains("fault injection active: drop-trace"), "{out}");
        assert!(out.contains("ORACLE VIOLATIONS FOUND"), "{out}");

        // At least one minimized case file landed, small enough to read.
        let mut cases: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| p.extension().is_some_and(|x| x == "case"))
            .collect();
        cases.sort();
        assert!(!cases.is_empty(), "finding case files written:\n{out}");
        let text = std::fs::read_to_string(&cases[0]).unwrap();
        let case = route_fuzz::FuzzCase::parse(&text).expect("written case parses");
        assert!(case.net_count() <= 4, "minimal reproducer has {} nets", case.net_count());

        // Replaying the case with the fault still active reproduces...
        let (out, ok) = run(&format!("fuzz {}", cases[0].display()));
        assert!(!ok.unwrap(), "{out}");
        // ...and with the fault removed, the honest routers pass.
        std::env::remove_var("VROUTE_FUZZ_FAULT");
        let (out, ok) = run(&format!("fuzz {}", cases[0].display()));
        assert!(ok.unwrap(), "{out}");
        assert!(out.contains("all oracles passed"), "{out}");
    }

    /// Serializes the supervised-batch tests: `VROUTE_FAULT` is
    /// process-global, so runs that expect a clean engine must not
    /// observe another test's injected fault.
    static SUP_ENV: std::sync::Mutex<()> = std::sync::Mutex::new(());

    /// Writes `count` routable instances into `dir`, returning their
    /// space-joined paths.
    fn supervised_fixture(dir: &std::path::Path, count: usize) -> String {
        std::fs::create_dir_all(dir).unwrap();
        let mut files = String::new();
        for seed in 0..count {
            let (instance, _) =
                run(&format!("gen switchbox --width 12 --height 10 --nets 6 --seed {seed}"));
            let path = dir.join(format!("s{seed}.sb"));
            std::fs::write(&path, instance).unwrap();
            files.push_str(&format!("{} ", path.display()));
        }
        files.trim_end().to_owned()
    }

    #[test]
    fn supervised_batch_recovers_injected_failures() {
        let _guard = SUP_ENV.lock().unwrap();
        let dir = std::env::temp_dir().join("vroute-test-sup-fault");
        let files = supervised_fixture(&dir, 3);

        // First-attempt spurious failures on instances 0 and 2: the
        // retry completes them and the summary says so.
        std::env::set_var("VROUTE_FAULT", "fail@0,2@1");
        let (out, ok) = run(&format!("batch {files} --retries 2 --jobs 1"));
        std::env::remove_var("VROUTE_FAULT");
        assert!(ok.unwrap(), "retries recover the batch:\n{out}");
        assert!(out.contains("fault injection active: fail@0,2@1"), "{out}");
        assert!(out.contains("complete via retried:1"), "{out}");
        assert!(out.contains("3 complete, 0 salvaged"), "{out}");
        assert!(out.contains("2 retried"), "{out}");

        // Failures on the primary and its retry (the fault window counts
        // attempts across the whole chain): the Lee fallback rescues it.
        std::env::set_var("VROUTE_FAULT", "fail@0@2");
        let (out, ok) = run(&format!("batch {files} --retries 1 --fallback lee --jobs 1"));
        std::env::remove_var("VROUTE_FAULT");
        assert!(ok.unwrap(), "the fallback recovers the batch:\n{out}");
        assert!(out.contains("complete via fallback:lee"), "{out}");
        assert!(out.contains("1 fell back"), "{out}");

        // An unknown fault spec is rejected with a message.
        std::env::set_var("VROUTE_FAULT", "melt@0");
        let (_, result) = run(&format!("batch {files} --retries 1"));
        std::env::remove_var("VROUTE_FAULT");
        let msg = result.unwrap_err().to_string();
        assert!(msg.contains("VROUTE_FAULT"), "{msg}");
    }

    #[test]
    fn supervised_batch_salvages_on_zero_deadline() {
        let _guard = SUP_ENV.lock().unwrap();
        std::env::remove_var("VROUTE_FAULT");
        let dir = std::env::temp_dir().join("vroute-test-sup-salvage");
        let files = supervised_fixture(&dir, 2);
        let report = dir.join("salvage.json");
        let (out, ok) =
            run(&format!("batch {files} --retries 0 --deadline-ms 0 --json {}", report.display()));
        assert!(!ok.unwrap(), "a salvaged batch is not complete:\n{out}");
        assert!(out.contains("0 complete, 2 salvaged"), "{out}");
        assert!(out.contains("salvaged,"), "{out}");
        let text = std::fs::read_to_string(&report).unwrap();
        assert!(text.contains("\"status\": \"salvaged\""), "{text}");
        assert!(text.contains("\"lint\": 0"), "salvaged dbs lint clean:\n{text}");
        assert!(text.contains("deadline"), "{text}");
    }

    #[test]
    fn supervised_batch_resume_report_is_byte_identical() {
        let _guard = SUP_ENV.lock().unwrap();
        std::env::remove_var("VROUTE_FAULT");
        let dir = std::env::temp_dir().join("vroute-test-sup-resume");
        let _ = std::fs::remove_dir_all(&dir);
        let files = supervised_fixture(&dir, 6);
        let jdir = dir.join("journal");
        let full = dir.join("full.json");
        let resumed = dir.join("resumed.json");

        let (out, ok) = run(&format!(
            "batch {files} --retries 1 --journal {} --jobs 2 --json {}",
            jdir.display(),
            full.display()
        ));
        assert!(ok.unwrap(), "{out}");
        assert!(out.contains("journal:"), "{out}");

        // Simulate a SIGKILL mid-run: keep the first two completed
        // records, one in-flight marker, and a torn half-line.
        let log = jdir.join("journal.ldj");
        let text = std::fs::read_to_string(&log).unwrap();
        let done: Vec<&str> = text.lines().filter(|l| l.contains("\"ev\":\"done\"")).collect();
        let begin = text.lines().find(|l| l.contains("\"ev\":\"begin\"")).unwrap();
        let torn = &done[2][..done[2].len() / 2];
        std::fs::write(&log, format!("{}\n{}\n{}", done[..2].join("\n"), begin, torn)).unwrap();

        let (out, ok) = run(&format!(
            "batch {files} --retries 1 --journal {} --resume --jobs 2 --json {}",
            jdir.display(),
            resumed.display()
        ));
        assert!(ok.unwrap(), "{out}");
        assert!(out.contains("2 resumed"), "{out}");
        assert!(out.contains("(resumed)"), "{out}");

        assert_eq!(
            std::fs::read_to_string(&full).unwrap(),
            std::fs::read_to_string(&resumed).unwrap(),
            "a killed-and-resumed report must be byte-identical"
        );
    }

    #[test]
    fn fuzz_rejects_unknown_fault_names() {
        let _guard = FUZZ_ENV.lock().unwrap();
        std::env::set_var("VROUTE_FUZZ_FAULT", "melt-the-grid");
        let (_, result) = run("fuzz --seeds 0..1");
        std::env::remove_var("VROUTE_FUZZ_FAULT");
        let msg = result.unwrap_err().to_string();
        assert!(msg.contains("melt-the-grid"), "{msg}");
    }
}
