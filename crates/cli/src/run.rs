//! Command execution for `vroute`.

use std::error::Error;
use std::fmt;

use mighty::{MightyRouter, RouterConfig};
use route_benchdata::format::{self, ParseError};
use route_benchdata::gen::{ChannelGen, SwitchboxGen};
use route_channel::{dogleg, greedy, lea, yacr, RouteError};
use route_maze::{sequential, CostModel};
use route_model::{render_layers, render_svg, RouteDb};
use route_opt::{cleanup, OptimizeConfig};
use route_verify::verify;

use crate::{ChannelRouterKind, Command, GenKind, SwitchRouterKind, USAGE};

/// Error produced when executing a command.
#[derive(Debug)]
pub enum ExecutionError {
    /// Reading or writing a file failed.
    Io(String, std::io::Error),
    /// Parsing the instance failed.
    Parse(ParseError),
    /// A channel router could not route the instance.
    Unroutable(String),
}

impl fmt::Display for ExecutionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecutionError::Io(path, e) => write!(f, "{path}: {e}"),
            ExecutionError::Parse(e) => write!(f, "parse error: {e}"),
            ExecutionError::Unroutable(msg) => write!(f, "{msg}"),
        }
    }
}

impl Error for ExecutionError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ExecutionError::Io(_, e) => Some(e),
            ExecutionError::Parse(e) => Some(e),
            ExecutionError::Unroutable(_) => None,
        }
    }
}

impl From<ParseError> for ExecutionError {
    fn from(e: ParseError) -> Self {
        ExecutionError::Parse(e)
    }
}

/// Executes a parsed command, writing human-readable output to `out`.
///
/// Returns `true` when the routing (if any) completed all nets, so the
/// binary can choose its exit code.
///
/// # Errors
///
/// Returns [`ExecutionError`] for I/O failures, malformed instance
/// files, or channel routers that cannot route the instance at all.
pub fn execute(cmd: &Command, out: &mut dyn fmt::Write) -> Result<bool, ExecutionError> {
    match cmd {
        Command::Help => {
            write!(out, "{USAGE}").expect("writing usage");
            Ok(true)
        }
        Command::Gen(kind) => {
            // Pre-validate dimensions and capacity so user errors produce
            // a message, not a library panic.
            let bad_dims = match *kind {
                GenKind::Switchbox { width, height, .. } => {
                    width == 0 || height == 0 || width > 4096 || height > 4096
                }
                GenKind::Channel { width, .. } => width == 0 || width > 65536,
            };
            if bad_dims {
                return Err(ExecutionError::Unroutable(
                    "instance dimensions out of supported range (switchbox sides 1..=4096, \
                     channel width 1..=65536)"
                        .to_string(),
                ));
            }
            let text = match *kind {
                GenKind::Switchbox { width, height, nets, seed } => {
                    let slots = 2 * height as u64 + 2 * width.saturating_sub(2) as u64;
                    if u64::from(nets) * 2 > slots {
                        return Err(ExecutionError::Unroutable(format!(
                            "a {width}x{height} boundary holds at most {} pins; \
                             {nets} nets need {}",
                            slots,
                            nets * 2
                        )));
                    }
                    format::write_problem(&SwitchboxGen { width, height, nets, seed }.build())
                }
                GenKind::Channel { width, nets, extra_pin_pct, window, seed } => {
                    // Worst case every net takes 3 pins.
                    if u64::from(nets) * 3 > 2 * width as u64 {
                        return Err(ExecutionError::Unroutable(format!(
                            "a {width}-column channel holds at most {} pins; \
                             {nets} nets may need up to {}",
                            2 * width,
                            nets * 3
                        )));
                    }
                    format::write_channel(
                        &ChannelGen { width, nets, extra_pin_pct, span_window: window, seed }
                            .build(),
                    )
                }
            };
            write!(out, "{text}").expect("writing instance");
            Ok(true)
        }
        Command::Route { file, router, ascii, svg, save, optimize } => {
            let text = std::fs::read_to_string(file)
                .map_err(|e| ExecutionError::Io(file.clone(), e))?;
            let problem = format::parse_problem(&text)?;
            let mut db: RouteDb;
            let complete = match router {
                SwitchRouterKind::Ripup => {
                    let outcome =
                        MightyRouter::new(RouterConfig::default()).route(&problem);
                    let complete = outcome.is_complete();
                    writeln!(out, "router: rip-up/reroute ({})", outcome.stats())
                        .expect("writing");
                    db = outcome.into_db();
                    complete
                }
                SwitchRouterKind::Lee => {
                    let outcome = sequential::route_all(&problem, CostModel::default());
                    let complete = outcome.is_complete();
                    writeln!(out, "router: sequential lee").expect("writing");
                    db = outcome.db;
                    complete
                }
                SwitchRouterKind::Tiled => {
                    let outcome = route_global::route_hierarchical(
                        &problem,
                        &route_global::GlobalConfig::default(),
                    );
                    let complete = outcome.is_complete();
                    writeln!(out, "router: hierarchical ({:?})", outcome.stats())
                        .expect("writing");
                    db = outcome.into_db();
                    complete
                }
            };
            if *optimize {
                let stats = cleanup(&problem, &mut db, &OptimizeConfig::default());
                writeln!(
                    out,
                    "cleanup: {} nets improved, saved {} cost units",
                    stats.improved,
                    stats.saved(3)
                )
                .expect("writing");
            }
            let report = verify(&problem, &db);
            let stats = db.stats();
            writeln!(
                out,
                "nets: {} total, complete: {complete}, wire: {}, vias: {}",
                problem.nets().len(),
                stats.wirelength,
                stats.vias
            )
            .expect("writing");
            writeln!(out, "verify: {report}").expect("writing");
            if *ascii {
                writeln!(out, "\n{}", render_layers(&db)).expect("writing");
            }
            if let Some(path) = svg {
                std::fs::write(path, render_svg(&db))
                    .map_err(|e| ExecutionError::Io(path.clone(), e))?;
                writeln!(out, "svg written to {path}").expect("writing");
            }
            if let Some(path) = save {
                std::fs::write(path, format::write_routes(&problem, &db))
                    .map_err(|e| ExecutionError::Io(path.clone(), e))?;
                writeln!(out, "routes written to {path}").expect("writing");
            }
            Ok(complete)
        }
        Command::Check { instance, routes, svg } => {
            let text = std::fs::read_to_string(instance)
                .map_err(|e| ExecutionError::Io(instance.clone(), e))?;
            let problem = format::parse_problem(&text)?;
            let routes_text = std::fs::read_to_string(routes)
                .map_err(|e| ExecutionError::Io(routes.clone(), e))?;
            let db = format::parse_routes(&problem, &routes_text)?;
            let report = verify(&problem, &db);
            let stats = db.stats();
            writeln!(
                out,
                "nets: {}, wire: {}, vias: {}",
                problem.nets().len(),
                stats.wirelength,
                stats.vias
            )
            .expect("writing");
            writeln!(out, "verify: {report}").expect("writing");
            if let Some(path) = svg {
                std::fs::write(path, render_svg(&db))
                    .map_err(|e| ExecutionError::Io(path.clone(), e))?;
                writeln!(out, "svg written to {path}").expect("writing");
            }
            Ok(report.is_clean())
        }
        Command::Channel { file, router, tracks, layers } => {
            if let Some(t) = tracks {
                if *t == 0 || *t > 4096 {
                    return Err(ExecutionError::Unroutable(format!(
                        "--tracks must be between 1 and 4096, got {t}"
                    )));
                }
            }
            let text = std::fs::read_to_string(file)
                .map_err(|e| ExecutionError::Io(file.clone(), e))?;
            let spec = format::parse_channel(&text)?;
            writeln!(out, "{spec}").expect("writing");
            let fail = |e: RouteError| ExecutionError::Unroutable(e.to_string());
            if *layers == 3 && *router != ChannelRouterKind::Ripup {
                return Err(ExecutionError::Unroutable(
                    "only the rip-up router supports three-layer channels".to_string(),
                ));
            }
            match router {
                ChannelRouterKind::Lea => {
                    let sol = lea::route(&spec).map_err(fail)?;
                    writeln!(out, "left-edge: {} tracks", sol.tracks).expect("writing");
                }
                ChannelRouterKind::Dogleg => {
                    let sol = dogleg::route(&spec).map_err(fail)?;
                    writeln!(out, "dogleg: {} tracks", sol.tracks).expect("writing");
                }
                ChannelRouterKind::Greedy => {
                    let sol = greedy::route(&spec).map_err(fail)?;
                    writeln!(
                        out,
                        "greedy: {} tracks, {} extension columns",
                        sol.tracks, sol.extra_columns
                    )
                    .expect("writing");
                }
                ChannelRouterKind::Yacr => {
                    let sol = yacr::route(&spec, 8).map_err(fail)?;
                    writeln!(out, "yacr-style: {} tracks", sol.tracks).expect("writing");
                }
                ChannelRouterKind::Ripup => {
                    let density = spec.density().max(1) as usize;
                    let candidates: Vec<usize> = match tracks {
                        Some(t) => vec![*t],
                        None => (density..density + 9).collect(),
                    };
                    let router = MightyRouter::new(RouterConfig::default());
                    let mut done = false;
                    for t in candidates {
                        let problem = spec.to_problem_with_layers(t, *layers);
                        let outcome = router.route(&problem);
                        if outcome.is_complete() {
                            writeln!(out, "rip-up: {t} tracks").expect("writing");
                            done = true;
                            break;
                        }
                    }
                    if !done {
                        return Err(ExecutionError::Unroutable(
                            "rip-up could not route the channel within its track budget"
                                .to_string(),
                        ));
                    }
                }
            }
            Ok(true)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_args;

    fn run(line: &str) -> (String, Result<bool, ExecutionError>) {
        let cmd = parse_args(line.split_whitespace().map(str::to_owned)).expect("parses");
        let mut out = String::new();
        let result = execute(&cmd, &mut out);
        (out, result)
    }

    #[test]
    fn help_prints_usage() {
        let (out, ok) = run("help");
        assert!(ok.unwrap());
        assert!(out.contains("USAGE"));
    }

    #[test]
    fn gen_then_route_round_trip() {
        let dir = std::env::temp_dir().join("vroute-test-gen");
        std::fs::create_dir_all(&dir).unwrap();
        let sb = dir.join("box.sb");
        let (instance, ok) = run("gen switchbox --width 10 --height 8 --nets 5 --seed 4");
        assert!(ok.unwrap());
        std::fs::write(&sb, instance).unwrap();

        let (out, ok) = run(&format!("route {} --ascii", sb.display()));
        assert!(ok.unwrap(), "generated box routes:\n{out}");
        assert!(out.contains("verify: clean"), "{out}");
        assert!(out.contains("M1"), "ascii printed: {out}");
    }

    #[test]
    fn route_with_svg_and_optimize() {
        let dir = std::env::temp_dir().join("vroute-test-svg");
        std::fs::create_dir_all(&dir).unwrap();
        let sb = dir.join("box.sb");
        let svg = dir.join("box.svg");
        let (instance, _) = run("gen switchbox --width 10 --height 8 --nets 5 --seed 4");
        std::fs::write(&sb, instance).unwrap();

        let (out, ok) =
            run(&format!("route {} --svg {} --optimize", sb.display(), svg.display()));
        assert!(ok.unwrap(), "{out}");
        assert!(out.contains("cleanup:"), "{out}");
        let svg_text = std::fs::read_to_string(&svg).unwrap();
        assert!(svg_text.starts_with("<svg"));
    }

    #[test]
    fn three_layer_channel_via_cli() {
        let dir = std::env::temp_dir().join("vroute-test-3l");
        std::fs::create_dir_all(&dir).unwrap();
        let ch = dir.join("c.ch");
        let (instance, _) = run("gen channel --width 20 --nets 8 --window 8 --seed 1");
        std::fs::write(&ch, instance).unwrap();
        let (out, ok) = run(&format!("channel {} --layers 3", ch.display()));
        assert!(ok.unwrap(), "{out}");
        // Baselines reject the third layer with a clear message.
        let (_, result) = run(&format!("channel {} --layers 3 --router greedy", ch.display()));
        assert!(matches!(result, Err(ExecutionError::Unroutable(_))));
    }

    #[test]
    fn channel_pipeline() {
        let dir = std::env::temp_dir().join("vroute-test-ch");
        std::fs::create_dir_all(&dir).unwrap();
        let ch = dir.join("c.ch");
        let (instance, _) = run("gen channel --width 20 --nets 8 --window 8 --seed 1");
        std::fs::write(&ch, instance).unwrap();

        for router in ["greedy", "yacr", "ripup"] {
            let (out, ok) = run(&format!("channel {} --router {router}", ch.display()));
            assert!(ok.unwrap(), "{router} failed:\n{out}");
            assert!(out.contains("tracks"), "{out}");
        }
    }

    #[test]
    fn tiled_router_routes_a_larger_box() {
        let dir = std::env::temp_dir().join("vroute-test-tiled");
        std::fs::create_dir_all(&dir).unwrap();
        let sb = dir.join("big.sb");
        let (instance, _) = run("gen switchbox --width 40 --height 40 --nets 16 --seed 2");
        std::fs::write(&sb, instance).unwrap();
        let (out, ok) = run(&format!("route {} --router tiled", sb.display()));
        assert!(ok.unwrap(), "{out}");
        assert!(out.contains("hierarchical"), "{out}");
        assert!(out.contains("verify: clean"), "{out}");
    }

    #[test]
    fn save_then_check_round_trip() {
        let dir = std::env::temp_dir().join("vroute-test-check");
        std::fs::create_dir_all(&dir).unwrap();
        let sb = dir.join("box.sb");
        let routes = dir.join("box.routes");
        let (instance, _) = run("gen switchbox --width 10 --height 8 --nets 5 --seed 4");
        std::fs::write(&sb, instance).unwrap();

        let (out, ok) = run(&format!("route {} --save {}", sb.display(), routes.display()));
        assert!(ok.unwrap(), "{out}");
        assert!(out.contains("routes written"), "{out}");

        let (out, ok) = run(&format!("check {} {}", sb.display(), routes.display()));
        assert!(ok.unwrap(), "saved routing verifies clean:\n{out}");
        assert!(out.contains("verify: clean"), "{out}");

        // Tampering with the routing is caught: drop a line.
        let text = std::fs::read_to_string(&routes).unwrap();
        let truncated: Vec<&str> = text.lines().filter(|l| !l.starts_with("trace")).collect();
        std::fs::write(&routes, truncated.join("\n")).unwrap();
        let (out, ok) = run(&format!("check {} {}", sb.display(), routes.display()));
        assert!(!ok.unwrap(), "incomplete routing must not verify clean:\n{out}");
    }

    #[test]
    fn region_instance_routes() {
        let dir = std::env::temp_dir().join("vroute-test-region");
        std::fs::create_dir_all(&dir).unwrap();
        let f = dir.join("l.sb");
        std::fs::write(
            &f,
            "region 0 0 12 4\nregion 0 0 4 12\nnet a 1 11 M2  11 1 M1\n",
        )
        .unwrap();
        let (out, ok) = run(&format!("route {}", f.display()));
        assert!(ok.unwrap(), "L-region routes:\n{out}");
        assert!(out.contains("verify: clean"), "{out}");
    }

    #[test]
    fn missing_file_reports_io_error() {
        let (_, result) = run("route /nonexistent/really.sb");
        assert!(matches!(result, Err(ExecutionError::Io(_, _))));
    }

    #[test]
    fn bad_instance_reports_parse_error() {
        let dir = std::env::temp_dir().join("vroute-test-bad");
        std::fs::create_dir_all(&dir).unwrap();
        let f = dir.join("bad.sb");
        std::fs::write(&f, "nonsense here").unwrap();
        let (_, result) = run(&format!("route {}", f.display()));
        assert!(matches!(result, Err(ExecutionError::Parse(_))));
    }
}
