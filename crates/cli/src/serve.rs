//! The `vroute serve` daemon and its `vroute client` counterpart.
//!
//! The daemon wraps [`mighty::RouteService`] — warm workers behind a
//! bounded admission queue — in a socket transport speaking the v1
//! line-delimited JSON protocol of [`route_proto::wire`]. Each accepted
//! connection gets one thread that processes its requests serially:
//! read a line, dispatch it, stream any subscribed events, write
//! exactly one terminal response, repeat. Malformed input (oversized
//! lines, bad JSON, wrong version, unknown ops) produces a structured
//! error response on the same connection — never a disconnect — so a
//! confused client can correct itself without reconnecting.
//!
//! With `--journal DIR` every accepted route request is appended to a
//! crash-safe WAL (`serve.ldj`, crc-sealed like the batch journal)
//! *before* routing starts, and marked done after its response is
//! written. `--resume` replays the unanswered suffix through the same
//! dispatch path at startup, so a daemon killed mid-request finishes
//! the work on restart.

use std::fmt;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

use mighty::{
    JobSpec, PendingRequest, RouteService, ServeJournal, ServiceConfig, ServiceReply, ServiceStats,
    SubmitError,
};
use route_benchdata::format;
use route_maze::LeeRouter;
use route_model::{DetailedRouter, RouteError};
use route_proto::{
    decode_request, decode_server_msg, encode_request, event_line, response_err, response_ok,
    ErrorCode, Json, Request, RouteOutcomeReport, RouteRequest, ServerMsg, WireError,
    DEFAULT_PRIORITY, MAX_LINE_BYTES,
};
use route_verify::verify;

use crate::args::{batch_kind, BatchRouterKind, ServeEndpoint};
use crate::run::{batch_router_name, ExecutionError};

/// Arguments for [`execute_serve`], mirroring `Command::Serve`.
pub(crate) struct ServeSpec<'a> {
    /// Socket endpoint to listen on.
    pub endpoint: &'a ServeEndpoint,
    /// Warm worker threads (0 = one per hardware thread).
    pub workers: usize,
    /// Admission-queue bound.
    pub queue: usize,
    /// Default per-request deadline applied when a request names none.
    pub deadline_ms: Option<u64>,
    /// Journal directory for the crash-safe request WAL.
    pub journal: Option<&'a str>,
    /// Replay unanswered journaled requests before accepting clients.
    pub resume: bool,
}

/// Arguments for [`execute_client`], mirroring `Command::Client`.
pub(crate) struct ClientSpec<'a> {
    /// Socket endpoint of the daemon.
    pub endpoint: &'a ServeEndpoint,
    /// Instance files, one route request each.
    pub files: &'a [String],
    /// Router named in each request.
    pub router: BatchRouterKind,
    /// Per-request deadline.
    pub deadline_ms: Option<u64>,
    /// Request priority (0-9; default 4).
    pub priority: Option<u8>,
    /// Subscribe to streamed per-net events.
    pub events: bool,
    /// Send a shutdown request after the files.
    pub shutdown: bool,
}

/// A listening socket of either flavor.
enum Listener {
    Unix(UnixListener),
    Tcp(TcpListener),
}

impl Listener {
    fn bind(endpoint: &ServeEndpoint) -> io::Result<Listener> {
        match endpoint {
            ServeEndpoint::Unix(path) => {
                // A leftover socket file from a dead daemon blocks bind;
                // connecting distinguishes live from stale.
                if Path::new(path).exists() && UnixStream::connect(path).is_err() {
                    std::fs::remove_file(path)?;
                }
                UnixListener::bind(path).map(Listener::Unix)
            }
            ServeEndpoint::Tcp(addr) => TcpListener::bind(addr).map(Listener::Tcp),
        }
    }

    fn accept(&self) -> io::Result<Conn> {
        match self {
            Listener::Unix(l) => l.accept().map(|(s, _)| Conn::Unix(s)),
            Listener::Tcp(l) => l.accept().map(|(s, _)| Conn::Tcp(s)),
        }
    }
}

/// One accepted or dialed connection of either flavor.
enum Conn {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Conn {
    fn connect(endpoint: &ServeEndpoint) -> io::Result<Conn> {
        match endpoint {
            ServeEndpoint::Unix(path) => UnixStream::connect(path).map(Conn::Unix),
            ServeEndpoint::Tcp(addr) => TcpStream::connect(addr).map(Conn::Tcp),
        }
    }

    fn try_clone(&self) -> io::Result<Conn> {
        match self {
            Conn::Unix(s) => s.try_clone().map(Conn::Unix),
            Conn::Tcp(s) => s.try_clone().map(Conn::Tcp),
        }
    }

    fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        match self {
            Conn::Unix(s) => s.set_read_timeout(timeout),
            Conn::Tcp(s) => s.set_read_timeout(timeout),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Unix(s) => s.read(buf),
            Conn::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Unix(s) => s.write(buf),
            Conn::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Unix(s) => s.flush(),
            Conn::Tcp(s) => s.flush(),
        }
    }
}

/// State shared by the accept loop and every connection thread.
struct Daemon {
    service: RouteService,
    journal: Option<ServeJournal>,
    stop: AtomicBool,
}

/// One bounded line read off a connection.
enum LineRead {
    /// Clean end of stream (possibly after a final unterminated line).
    Eof,
    /// A complete line, newline stripped.
    Line(String),
    /// The line exceeded [`MAX_LINE_BYTES`]; input was discarded up to
    /// the next newline (or EOF) so the stream stays parseable.
    Oversized,
}

/// Reads one `\n`-terminated line without ever buffering more than
/// `cap` bytes of it.
///
/// The underlying stream may carry a read timeout; timeouts surface as
/// `WouldBlock`/`TimedOut` and are retried (partial lines stay
/// buffered) until `stop` is set, at which point the read reports EOF
/// so an idle client cannot pin the daemon's shutdown.
fn read_line_bounded(
    reader: &mut impl BufRead,
    cap: usize,
    stop: &AtomicBool,
) -> io::Result<LineRead> {
    // What the next buffered chunk holds, without any borrow escaping.
    enum Chunk {
        Eof,
        Stopped,
        Newline { at: usize },
        Partial { len: usize },
    }
    let next_chunk = |reader: &mut dyn BufRead| -> io::Result<Chunk> {
        loop {
            match reader.fill_buf() {
                Ok([]) => return Ok(Chunk::Eof),
                Ok(chunk) => {
                    return Ok(match chunk.iter().position(|&b| b == b'\n') {
                        Some(at) => Chunk::Newline { at },
                        None => Chunk::Partial { len: chunk.len() },
                    });
                }
                Err(e)
                    if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) =>
                {
                    if stop.load(Ordering::SeqCst) {
                        return Ok(Chunk::Stopped);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    };
    let deliver = |line: Vec<u8>| {
        if line.is_empty() {
            LineRead::Eof
        } else {
            LineRead::Line(String::from_utf8_lossy(&line).into_owned())
        }
    };
    let mut line: Vec<u8> = Vec::new();
    let mut discarding = false;
    loop {
        match next_chunk(reader)? {
            Chunk::Eof => {
                return Ok(if discarding { LineRead::Oversized } else { deliver(line) });
            }
            Chunk::Stopped => {
                // Shutdown: surface whatever arrived, then EOF.
                return Ok(if discarding { LineRead::Oversized } else { deliver(line) });
            }
            Chunk::Newline { at } => {
                let oversized = discarding || line.len() + at > cap;
                if !oversized {
                    let chunk = reader.fill_buf()?;
                    line.extend_from_slice(&chunk[..at]);
                }
                reader.consume(at + 1);
                return Ok(if oversized {
                    LineRead::Oversized
                } else {
                    LineRead::Line(String::from_utf8_lossy(&line).into_owned())
                });
            }
            Chunk::Partial { len } => {
                if !discarding && line.len() + len > cap {
                    // The line blew the cap: stop buffering, keep
                    // consuming until its newline so the stream stays
                    // parseable.
                    discarding = true;
                    line.clear();
                }
                if !discarding {
                    let chunk = reader.fill_buf()?;
                    line.extend_from_slice(&chunk[..len]);
                }
                reader.consume(len);
            }
        }
    }
}

/// The serve-side router table: `None` selects the daemon's warm
/// arena-reusing path; anything else is routed cold through the named
/// algorithm, exactly as `vroute batch --router` would.
fn service_router(kind: BatchRouterKind) -> Option<Arc<dyn DetailedRouter + Send + Sync>> {
    match kind {
        BatchRouterKind::Ripup => None,
        BatchRouterKind::Lee => Some(Arc::new(LeeRouter::default())),
        BatchRouterKind::Lea => Some(Arc::new(route_channel::LeaRouter)),
        BatchRouterKind::Dogleg => Some(Arc::new(route_channel::DoglegRouter)),
        BatchRouterKind::Greedy => Some(Arc::new(route_channel::GreedyRouter)),
        BatchRouterKind::Yacr => Some(Arc::new(route_channel::YacrRouter::default())),
        BatchRouterKind::Swbox => Some(Arc::new(route_channel::SwboxRouter)),
    }
}

/// Writes one protocol line and flushes it.
fn send_line(sink: &mut dyn Write, doc: &Json) -> io::Result<()> {
    sink.write_all(doc.render_compact().as_bytes())?;
    sink.write_all(b"\n")?;
    sink.flush()
}

/// A snapshot of the service counters as the `stats` op's result.
fn stats_json(s: &ServiceStats) -> Json {
    Json::obj([
        ("workers", Json::from(s.workers as u64)),
        ("queue_capacity", Json::from(s.queue_capacity as u64)),
        ("queue_depth", Json::from(s.queue_depth as u64)),
        ("max_queue_depth", Json::from(s.max_queue_depth as u64)),
        ("accepted", Json::from(s.accepted)),
        ("rejected", Json::from(s.rejected)),
        ("completed", Json::from(s.completed)),
        ("expired", Json::from(s.expired)),
        ("panicked", Json::from(s.panicked)),
    ])
}

/// Dispatches one request line, writing every protocol line it produces
/// (streamed events, then exactly one response) to `sink`.
///
/// Returns the status word recorded in the journal's `done` entry.
/// `replay_rid` carries an already-journaled request id during
/// `--resume` replay; live lines journal themselves.
fn process_line(
    daemon: &Daemon,
    endpoint: &ServeEndpoint,
    line: &str,
    replay_rid: Option<u64>,
    sink: &mut dyn Write,
) -> io::Result<()> {
    let request = match decode_request(line) {
        Ok(request) => request,
        Err(err) => {
            let status = err.code.as_str().to_string();
            send_line(sink, &response_err(None, &err))?;
            if let Some(rid) = replay_rid {
                journal_done(daemon, rid, &status);
            }
            return Ok(());
        }
    };
    match request {
        Request::Ping { id } => {
            send_line(sink, &response_ok(id.as_deref(), Json::obj([("pong", Json::Bool(true))])))
        }
        Request::Stats { id } => {
            let stats = stats_json(&daemon.service.stats());
            send_line(sink, &response_ok(id.as_deref(), stats))
        }
        Request::Shutdown { id } => {
            send_line(
                sink,
                &response_ok(id.as_deref(), Json::obj([("stopping", Json::Bool(true))])),
            )?;
            daemon.stop.store(true, Ordering::SeqCst);
            daemon.service.begin_shutdown();
            // The accept loop is blocked in accept(); a throwaway
            // connection wakes it so it can observe the stop flag.
            drop(Conn::connect(endpoint));
            Ok(())
        }
        Request::Route(route) => {
            // WAL discipline: a live request hits the journal before any
            // routing work so a crash mid-route replays it on restart.
            let rid = match replay_rid {
                Some(rid) => Some(rid),
                None => daemon.journal.as_ref().map(|j| j.accept(line)),
            };
            let status = process_route(daemon, &route, sink)?;
            if let Some(rid) = rid {
                journal_done(daemon, rid, &status);
            }
            Ok(())
        }
    }
}

/// Marks a journaled request answered.
fn journal_done(daemon: &Daemon, rid: u64, status: &str) {
    if let Some(journal) = daemon.journal.as_ref() {
        journal.done(rid, status);
    }
}

/// Runs one route request through the service and writes its protocol
/// lines. Returns the journal status word.
fn process_route(
    daemon: &Daemon,
    route: &RouteRequest,
    sink: &mut dyn Write,
) -> io::Result<String> {
    let id = route.id.as_deref();
    let refuse = |sink: &mut dyn Write, err: WireError| -> io::Result<String> {
        let status = err.code.as_str().to_string();
        send_line(sink, &response_err(id, &err))?;
        Ok(status)
    };
    let problem = match format::parse_problem(&route.instance) {
        Ok(problem) => problem,
        Err(e) => {
            return refuse(sink, WireError::new(ErrorCode::BadRequest, format!("instance: {e}")));
        }
    };
    let router = match route.router.as_deref() {
        None => None,
        Some(name) => match batch_kind(name) {
            Ok(kind) => service_router(kind),
            Err(_) => {
                return refuse(
                    sink,
                    WireError::new(
                        ErrorCode::BadRequest,
                        format!("unknown router `{name}` (ripup|lee|lea|dogleg|greedy|yacr|swbox)"),
                    ),
                );
            }
        },
    };
    let spec = JobSpec {
        tag: 0,
        problem: problem.clone(),
        router,
        priority: route.priority,
        deadline: route.deadline_ms.map(Duration::from_millis),
        stream_events: route.events,
    };
    let (tx, rx) = mpsc::channel();
    if let Err(e) = daemon.service.submit(spec, tx) {
        let code = match e {
            SubmitError::Saturated { .. } => ErrorCode::Overloaded,
            SubmitError::ShuttingDown => ErrorCode::ShuttingDown,
        };
        return refuse(sink, WireError::new(code, e.to_string()));
    }
    // Events stream as the worker emits them; the Done reply is
    // terminal, so the receive loop always ends.
    let mut event_count = 0u64;
    while let Ok(reply) = rx.recv() {
        match reply {
            ServiceReply::Event { event, .. } => {
                event_count += 1;
                send_line(sink, &event_line(id, &event))?;
            }
            ServiceReply::Done(done) => {
                let outcome = match done.result {
                    Ok(routing) => {
                        let report = verify(&problem, &routing.db);
                        let stats = routing.db.stats();
                        RouteOutcomeReport::Routed {
                            legal: report.is_clean() || report.is_legal_but_incomplete(),
                            complete: routing.is_complete(),
                            wire: stats.wirelength,
                            vias: stats.vias,
                            checksum: routing.db.checksum(),
                        }
                    }
                    Err(RouteError::Infeasible { reason }) => {
                        RouteOutcomeReport::Infeasible { reason }
                    }
                    Err(e) => RouteOutcomeReport::Failed { error: e.to_string() },
                };
                let status = outcome.status().to_string();
                let mut pairs = outcome.pairs();
                pairs.push(("ms".to_string(), Json::from(done.total_ms)));
                pairs.push(("queued_ms".to_string(), Json::from(done.queued_ms)));
                if route.events {
                    pairs.push(("events".to_string(), Json::from(event_count)));
                }
                send_line(sink, &response_ok(id, Json::Obj(pairs)))?;
                return Ok(status);
            }
        }
    }
    // The worker dropped the channel without a Done reply — only
    // possible if the service is torn down mid-request.
    refuse(sink, WireError::new(ErrorCode::Internal, "service dropped the request".to_string()))
}

/// Serves one accepted connection: requests are processed serially and
/// every request line gets exactly one response line.
fn handle_conn(conn: Conn, daemon: &Daemon, endpoint: &ServeEndpoint) {
    // A periodic read timeout lets this thread observe the stop flag
    // even when the client goes quiet, so an idle connection cannot
    // pin the daemon's shutdown.
    let _ = conn.set_read_timeout(Some(Duration::from_millis(200)));
    let Ok(reader) = conn.try_clone() else { return };
    let mut reader = BufReader::new(reader);
    let mut writer = conn;
    loop {
        match read_line_bounded(&mut reader, MAX_LINE_BYTES, &daemon.stop) {
            Err(_) | Ok(LineRead::Eof) => return,
            Ok(LineRead::Oversized) => {
                let err = WireError::new(
                    ErrorCode::Oversized,
                    format!("request line exceeds {MAX_LINE_BYTES} bytes"),
                );
                if send_line(&mut writer, &response_err(None, &err)).is_err() {
                    return;
                }
            }
            Ok(LineRead::Line(line)) => {
                if line.trim().is_empty() {
                    continue;
                }
                if process_line(daemon, endpoint, &line, None, &mut writer).is_err() {
                    return;
                }
            }
        }
    }
}

/// Parses `VROUTE_SERVE_FAULT` (`delay-MS`): an injected per-job stall
/// used by the crash-replay smoke test to widen the kill window.
fn fault_delay_from_env() -> Result<Option<Duration>, ExecutionError> {
    match std::env::var("VROUTE_SERVE_FAULT") {
        Err(_) => Ok(None),
        Ok(spec) => match spec.strip_prefix("delay-").and_then(|ms| ms.parse::<u64>().ok()) {
            Some(ms) => Ok(Some(Duration::from_millis(ms))),
            None => Err(ExecutionError::Unroutable(format!(
                "VROUTE_SERVE_FAULT: unknown fault `{spec}` (expected delay-MS)"
            ))),
        },
    }
}

/// Runs the daemon until a client sends `{"op":"shutdown"}`.
pub(crate) fn execute_serve(
    spec: &ServeSpec<'_>,
    out: &mut dyn fmt::Write,
) -> Result<bool, ExecutionError> {
    let config = ServiceConfig::builder()
        .workers(spec.workers)
        .queue_capacity(spec.queue)
        .default_deadline(spec.deadline_ms.map(Duration::from_millis))
        .fault_delay(fault_delay_from_env()?)
        .build()
        .map_err(|e| ExecutionError::Unroutable(format!("serve: {e}")))?;
    let service = RouteService::start(config)
        .map_err(|e| ExecutionError::Unroutable(format!("serve: {e}")))?;

    let (journal, pending) = match spec.journal {
        None => (None, Vec::new()),
        Some(dir) => {
            let dir = Path::new(dir);
            if spec.resume {
                let (journal, pending) = ServeJournal::resume(dir)
                    .map_err(|e| ExecutionError::Io(dir.display().to_string(), e))?;
                (Some(journal), pending)
            } else {
                let journal = ServeJournal::create(dir)
                    .map_err(|e| ExecutionError::Io(dir.display().to_string(), e))?;
                (Some(journal), Vec::new())
            }
        }
    };

    let daemon = Arc::new(Daemon { service, journal, stop: AtomicBool::new(false) });

    // Replay the unanswered journal suffix through the normal dispatch
    // path before any client can connect; results go to the journal,
    // not a socket (the original client is gone).
    if !pending.is_empty() {
        writeln!(out, "replaying {} journaled request(s)", pending.len()).expect("writing");
        for PendingRequest { rid, body } in &pending {
            process_line(&daemon, spec.endpoint, body, Some(*rid), &mut io::sink())
                .map_err(|e| ExecutionError::Io("journal replay".to_string(), e))?;
        }
    }

    let endpoint_name = match spec.endpoint {
        ServeEndpoint::Unix(path) => format!("unix:{path}"),
        ServeEndpoint::Tcp(addr) => format!("tcp:{addr}"),
    };
    let listener =
        Listener::bind(spec.endpoint).map_err(|e| ExecutionError::Io(endpoint_name.clone(), e))?;

    let mut handlers = Vec::new();
    while !daemon.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Err(e) => {
                if daemon.stop.load(Ordering::SeqCst) {
                    break;
                }
                return Err(ExecutionError::Io(endpoint_name, e));
            }
            Ok(conn) => {
                let daemon = Arc::clone(&daemon);
                let endpoint = spec.endpoint.clone();
                handlers.push(std::thread::spawn(move || {
                    handle_conn(conn, &daemon, &endpoint);
                }));
            }
        }
    }
    for handle in handlers {
        let _ = handle.join();
    }
    if let ServeEndpoint::Unix(path) = spec.endpoint {
        let _ = std::fs::remove_file(path);
    }

    let stats = daemon.service.shutdown();
    writeln!(
        out,
        "serve: {} accepted, {} completed, {} rejected, {} expired, {} panicked; peak queue {}",
        stats.accepted,
        stats.completed,
        stats.rejected,
        stats.expired,
        stats.panicked,
        stats.max_queue_depth
    )
    .expect("writing");
    if let Some(journal) = daemon.journal.as_ref() {
        if let Some(err) = journal.take_error() {
            return Err(ExecutionError::Unroutable(format!("serve journal write failed: {err}")));
        }
        writeln!(out, "journal: {}", journal.path().display()).expect("writing");
    }
    Ok(true)
}

/// Connects to a running daemon and drives one route request per file.
///
/// Returns `true` when every response came back `complete`, so the
/// binary exit code mirrors `vroute batch` semantics.
pub(crate) fn execute_client(
    spec: &ClientSpec<'_>,
    out: &mut dyn fmt::Write,
) -> Result<bool, ExecutionError> {
    let endpoint_name = match spec.endpoint {
        ServeEndpoint::Unix(path) => format!("unix:{path}"),
        ServeEndpoint::Tcp(addr) => format!("tcp:{addr}"),
    };
    let conn =
        Conn::connect(spec.endpoint).map_err(|e| ExecutionError::Io(endpoint_name.clone(), e))?;
    let reader = conn.try_clone().map_err(|e| ExecutionError::Io(endpoint_name.clone(), e))?;
    let mut reader = BufReader::new(reader);
    let mut writer = conn;
    let send = |writer: &mut Conn, request: &Request| -> Result<(), ExecutionError> {
        let line = encode_request(request).render_compact();
        writer
            .write_all(line.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .and_then(|()| writer.flush())
            .map_err(|e| ExecutionError::Io(endpoint_name.clone(), e))
    };

    let mut all_complete = true;
    for (i, file) in spec.files.iter().enumerate() {
        let instance =
            std::fs::read_to_string(file).map_err(|e| ExecutionError::Io(file.clone(), e))?;
        let id = format!("r{i}");
        let request = Request::Route(RouteRequest {
            id: Some(id.clone()),
            instance,
            router: Some(batch_router_name(spec.router).to_string()),
            deadline_ms: spec.deadline_ms,
            priority: spec.priority.unwrap_or(DEFAULT_PRIORITY),
            events: spec.events,
        });
        send(&mut writer, &request)?;
        let mut events = 0u64;
        loop {
            match read_server_line(&mut reader, &endpoint_name)? {
                ServerMsg::Event { .. } => events += 1,
                ServerMsg::Ok { result, .. } => {
                    let status = result.get("status").and_then(Json::as_str).unwrap_or("ok");
                    all_complete &= status == "complete";
                    write!(out, "{file}: {status}").expect("writing");
                    for key in ["wire", "vias", "ms"] {
                        if let Some(v) = result.get(key).and_then(Json::as_u64) {
                            write!(out, ", {key} {v}").expect("writing");
                        }
                    }
                    if let Some(sum) = result.get("checksum").and_then(Json::as_str) {
                        write!(out, ", checksum {sum}").expect("writing");
                    }
                    if let Some(reason) = result.get("reason").and_then(Json::as_str) {
                        write!(out, ": {reason}").expect("writing");
                    }
                    if let Some(error) = result.get("error").and_then(Json::as_str) {
                        write!(out, ": {error}").expect("writing");
                    }
                    if spec.events {
                        write!(out, " ({events} events)").expect("writing");
                    }
                    writeln!(out).expect("writing");
                    break;
                }
                ServerMsg::Err { error, .. } => {
                    all_complete = false;
                    writeln!(out, "{file}: refused: {} ({})", error.message, error.code.as_str())
                        .expect("writing");
                    break;
                }
            }
        }
    }

    if spec.shutdown {
        send(&mut writer, &Request::Shutdown { id: Some("stop".to_string()) })?;
        match read_server_line(&mut reader, &endpoint_name)? {
            ServerMsg::Ok { .. } => writeln!(out, "daemon stopping").expect("writing"),
            ServerMsg::Err { error, .. } => {
                all_complete = false;
                writeln!(out, "shutdown refused: {}", error.message).expect("writing");
            }
            ServerMsg::Event { .. } => {}
        }
    }
    Ok(all_complete)
}

/// Reads and decodes one server line, mapping EOF and undecodable
/// frames to execution errors (the *server* never sends bad frames;
/// this guards against talking to the wrong port).
fn read_server_line(
    reader: &mut impl BufRead,
    endpoint_name: &str,
) -> Result<ServerMsg, ExecutionError> {
    let mut line = String::new();
    let n = reader
        .read_line(&mut line)
        .map_err(|e| ExecutionError::Io(endpoint_name.to_string(), e))?;
    if n == 0 {
        return Err(ExecutionError::Unroutable(format!(
            "{endpoint_name}: connection closed before the response arrived"
        )));
    }
    decode_server_msg(line.trim_end()).map_err(|e| {
        ExecutionError::Unroutable(format!(
            "{endpoint_name}: undecodable server line: {}",
            e.message
        ))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_reader_splits_lines_and_flags_oversized() {
        let stop = AtomicBool::new(false);
        let data = b"short\nanother line\n";
        let mut reader = BufReader::new(&data[..]);
        match read_line_bounded(&mut reader, 1 << 20, &stop).unwrap() {
            LineRead::Line(l) => assert_eq!(l, "short"),
            _ => panic!("expected a line"),
        }
        match read_line_bounded(&mut reader, 1 << 20, &stop).unwrap() {
            LineRead::Line(l) => assert_eq!(l, "another line"),
            _ => panic!("expected a line"),
        }
        assert!(matches!(read_line_bounded(&mut reader, 1 << 20, &stop).unwrap(), LineRead::Eof));
    }

    #[test]
    fn bounded_reader_discards_runaway_lines_and_recovers() {
        // An oversized line followed by a normal one: the reader must
        // flag the first and still deliver the second intact.
        let stop = AtomicBool::new(false);
        let mut data = vec![b'x'; 300];
        data.push(b'\n');
        data.extend_from_slice(b"after\n");
        let mut reader = BufReader::with_capacity(64, &data[..]);
        assert!(matches!(read_line_bounded(&mut reader, 100, &stop).unwrap(), LineRead::Oversized));
        match read_line_bounded(&mut reader, 100, &stop).unwrap() {
            LineRead::Line(l) => assert_eq!(l, "after"),
            _ => panic!("expected the line after the oversized one"),
        }
    }

    #[test]
    fn bounded_reader_flags_exact_boundary_correctly() {
        let stop = AtomicBool::new(false);
        let data = b"12345\n123456\n";
        let mut reader = BufReader::new(&data[..]);
        assert!(matches!(
            read_line_bounded(&mut reader, 5, &stop).unwrap(),
            LineRead::Line(l) if l == "12345"
        ));
        assert!(matches!(read_line_bounded(&mut reader, 5, &stop).unwrap(), LineRead::Oversized));
    }

    #[test]
    fn unterminated_final_line_is_still_delivered() {
        let stop = AtomicBool::new(false);
        let data = b"no newline at end";
        let mut reader = BufReader::new(&data[..]);
        match read_line_bounded(&mut reader, 1 << 20, &stop).unwrap() {
            LineRead::Line(l) => assert_eq!(l, "no newline at end"),
            _ => panic!("expected the final line"),
        }
        assert!(matches!(read_line_bounded(&mut reader, 1 << 20, &stop).unwrap(), LineRead::Eof));
    }

    #[test]
    fn fault_env_parses_delay_and_rejects_junk() {
        // Uses the parser directly on strings to avoid mutating the
        // process environment from a test.
        assert_eq!(
            "delay-40".strip_prefix("delay-").and_then(|ms| ms.parse::<u64>().ok()),
            Some(40)
        );
        assert_eq!("panic".strip_prefix("delay-").and_then(|ms| ms.parse::<u64>().ok()), None);
    }
}
