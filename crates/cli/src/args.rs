//! Argument parsing for `vroute`, hand-rolled and dependency-free.

use std::error::Error;
use std::fmt;

use mighty::FrontierKind;

/// Router choices for switchbox instances.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SwitchRouterKind {
    /// The rip-up/reroute detailed router (default).
    #[default]
    Ripup,
    /// The sequential Lee-style maze baseline.
    Lee,
    /// Hierarchical: tile-planned global routing, rip-up per tile.
    Tiled,
}

/// Net-ordering policy for the `chip` planning phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ChipOrder {
    /// Smallest pin bounding box first (the historical order).
    #[default]
    Bbox,
    /// Static congestion features first (`route_analyze::net_features`).
    Features,
}

/// Router choices for channel instances.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ChannelRouterKind {
    /// Rip-up/reroute with minimum-track search (default).
    #[default]
    Ripup,
    /// Left-edge algorithm.
    Lea,
    /// Dogleg router.
    Dogleg,
    /// Greedy column sweep.
    Greedy,
    /// YACR-style track assignment with maze patch-up.
    Yacr,
}

/// Router choices for batch runs — the full unified
/// [`DetailedRouter`](route_model::DetailedRouter) roster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BatchRouterKind {
    /// The rip-up/reroute detailed router (default).
    #[default]
    Ripup,
    /// The sequential Lee-style maze baseline.
    Lee,
    /// Left-edge algorithm (channel-shaped instances only).
    Lea,
    /// Dogleg router (channel-shaped instances only).
    Dogleg,
    /// Greedy column sweep (channel-shaped instances only).
    Greedy,
    /// YACR-style track assignment (channel-shaped instances only).
    Yacr,
    /// Greedy switchbox sweep.
    Swbox,
}

/// Instance kinds the generator can produce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GenKind {
    /// Random switchbox.
    Switchbox {
        /// Grid width.
        width: u32,
        /// Grid height.
        height: u32,
        /// Net count.
        nets: u32,
        /// RNG seed.
        seed: u64,
    },
    /// Random channel.
    Channel {
        /// Column count.
        width: usize,
        /// Net count.
        nets: u32,
        /// Multi-pin pressure, percent.
        extra_pin_pct: u32,
        /// Span window (0 = unbounded).
        window: usize,
        /// RNG seed.
        seed: u64,
    },
}

/// Where the routing service listens (and where the client connects).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeEndpoint {
    /// A unix-domain socket at this path.
    Unix(String),
    /// A TCP listen/connect address, e.g. `127.0.0.1:7777`.
    Tcp(String),
}

/// A fully parsed command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// Route a switchbox file.
    Route {
        /// Instance path.
        file: String,
        /// Algorithm.
        router: SwitchRouterKind,
        /// Print ASCII art of the result.
        ascii: bool,
        /// Write an SVG of the result to this path.
        svg: Option<String>,
        /// Write the routed traces (routes format) to this path.
        save: Option<String>,
        /// Run the cleanup pass after routing.
        optimize: bool,
        /// Write the observer event stream (line-delimited JSON) here.
        trace: Option<String>,
        /// Print the observer metrics table after routing.
        metrics: bool,
        /// Write a machine-readable JSON report (including metrics) here.
        json: Option<String>,
        /// Gate routing on the static feasibility analysis and lint the
        /// routed database afterwards.
        analyze: bool,
        /// Open-list implementation for the rip-up router's searches.
        frontier: FrontierKind,
    },
    /// Route many switchbox files concurrently through the batch engine.
    Batch {
        /// Instance paths (in addition to any `--list` contents).
        files: Vec<String>,
        /// File with one instance path per line (`#` comments allowed).
        list: Option<String>,
        /// Algorithm.
        router: BatchRouterKind,
        /// Worker threads (0 = one per hardware thread).
        jobs: usize,
        /// Write a machine-readable JSON report to this path.
        json: Option<String>,
        /// Per-instance wall-clock budget in milliseconds.
        deadline_ms: Option<u64>,
        /// Write every instance's event stream (line-delimited JSON) here.
        trace: Option<String>,
        /// Print the aggregated observer metrics table after the batch.
        metrics: bool,
        /// Skip provably infeasible instances via the engine precheck.
        analyze: bool,
        /// Supervised recovery: retry budget per instance (implies the
        /// supervised engine even when 0).
        retries: Option<u32>,
        /// Supervised recovery: fallback routers tried after the retry
        /// budget is exhausted, in order.
        fallback: Vec<BatchRouterKind>,
        /// Supervised recovery: directory for the crash-safe run
        /// journal (`journal.ldj`).
        journal: Option<String>,
        /// Resume from an existing journal, skipping completed
        /// instances (requires `journal`).
        resume: bool,
        /// Open-list implementation for the rip-up router's searches.
        frontier: FrontierKind,
    },
    /// Route a channel file.
    Channel {
        /// Instance path.
        file: String,
        /// Algorithm.
        router: ChannelRouterKind,
        /// Fixed track count (rip-up only; default searches from density).
        tracks: Option<usize>,
        /// Routing layers (2 or 3; rip-up only; default 2).
        layers: u8,
    },
    /// Statically analyze an instance (and optionally a saved routing)
    /// without routing anything.
    Analyze {
        /// Instance path: sb format or a saved `fuzzcase v1` file.
        instance: String,
        /// Optional routing path (routes format) to lint as well.
        routes: Option<String>,
        /// Run the chip-scale analysis (F004–F006 certificates plus the
        /// congestion map) at this tile size instead of the flat pass.
        chip: Option<u32>,
        /// Write the diagnostics as a machine-readable JSON report here.
        json: Option<String>,
    },
    /// Verify a saved routing against its instance.
    Check {
        /// Instance path (sb format).
        instance: String,
        /// Routing path (routes format).
        routes: String,
        /// Write an SVG of the loaded routing to this path.
        svg: Option<String>,
    },
    /// Generate an instance to stdout.
    Gen(GenKind),
    /// Generate a synthetic chip floorplan and route it hierarchically:
    /// tile-graph planning, parallel per-tile detail routing on the
    /// batch engine, seam stitching, flat fallback.
    Chip {
        /// Chip width in cells.
        width: u32,
        /// Chip height in cells.
        height: u32,
        /// Net count.
        nets: u32,
        /// Macro-obstacle count.
        macros: u32,
        /// Generator seed.
        seed: u64,
        /// Tile side length in cells.
        tile: u32,
        /// Worker threads for the tile batch (0 = one per hardware
        /// thread); any value yields a byte-identical database.
        jobs: usize,
        /// Run the chip-scale analysis precheck before planning:
        /// certified-unroutable nets are skipped and counted.
        analyze: bool,
        /// Net-ordering policy for the planning phase.
        order: ChipOrder,
        /// Supervised recovery: retry budget per tile (implies the
        /// supervised tile stage even when 0).
        retries: Option<u32>,
        /// Supervised recovery: hand exhausted tiles to the sequential
        /// Lee baseline before salvaging (implies the supervised tile
        /// stage).
        fallback: bool,
        /// Directory for the crash-safe chip journal (`chip.ldj`).
        journal: Option<String>,
        /// Resume from an existing chip journal, replaying completed
        /// tiles (requires `journal`).
        resume: bool,
        /// Write a machine-readable JSON report to this path.
        json: Option<String>,
    },
    /// Run the persistent routing service: a daemon with warm router
    /// workers speaking the versioned line-delimited JSON protocol.
    Serve {
        /// Listen endpoint (exactly one of `--socket`/`--tcp`).
        endpoint: ServeEndpoint,
        /// Warm worker threads (0 = one per hardware thread).
        workers: usize,
        /// Admission-queue bound (requests beyond it are rejected with
        /// an `overloaded` error).
        queue: usize,
        /// Default per-request wall-clock budget in milliseconds,
        /// applied to requests that do not carry their own.
        deadline_ms: Option<u64>,
        /// Directory for the crash-safe request journal (`serve.ldj`).
        journal: Option<String>,
        /// Replay unanswered journaled requests on startup (requires
        /// `journal`).
        resume: bool,
    },
    /// Drive a running routing service: submit instance files as
    /// protocol requests and print the responses.
    Client {
        /// Connect endpoint (exactly one of `--socket`/`--tcp`).
        endpoint: ServeEndpoint,
        /// Instance paths to route, one request per file.
        files: Vec<String>,
        /// Algorithm requested for every file.
        router: BatchRouterKind,
        /// Per-request wall-clock budget in milliseconds.
        deadline_ms: Option<u64>,
        /// Request priority (0-9, higher first).
        priority: Option<u8>,
        /// Subscribe to streamed routing events.
        events: bool,
        /// Ask the daemon to shut down after any file requests.
        shutdown: bool,
    },
    /// Differentially fuzz the router roster over seeded generator
    /// sweeps, or replay saved case files.
    Fuzz {
        /// Seed range (half-open) to sweep; `None` replays `cases` only.
        seeds: Option<(u64, u64)>,
        /// Saved `fuzzcase` files to replay through the oracles.
        cases: Vec<String>,
        /// Worker threads (0 = one per hardware thread).
        jobs: usize,
        /// Minimize each finding to a smallest reproducing case.
        shrink: bool,
        /// Directory where finding case files are written.
        out: Option<String>,
    },
    /// Print usage.
    Help,
}

/// Error produced for an invalid command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseArgsError(pub String);

impl fmt::Display for ParseArgsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl Error for ParseArgsError {}

fn err(msg: impl Into<String>) -> ParseArgsError {
    ParseArgsError(msg.into())
}

struct Cursor {
    args: Vec<String>,
    pos: usize,
}

impl Cursor {
    fn next(&mut self) -> Option<&str> {
        let a = self.args.get(self.pos)?;
        self.pos += 1;
        Some(a)
    }

    fn value_of(&mut self, flag: &str) -> Result<String, ParseArgsError> {
        self.next().map(str::to_owned).ok_or_else(|| err(format!("{flag} needs a value")))
    }
}

/// Parses the argument list (without the program name).
///
/// # Errors
///
/// Returns [`ParseArgsError`] with a human-readable message for unknown
/// commands, unknown flags, missing values or unparsable numbers.
pub fn parse_args<I: IntoIterator<Item = String>>(args: I) -> Result<Command, ParseArgsError> {
    let mut cur = Cursor { args: args.into_iter().collect(), pos: 0 };
    let Some(cmd) = cur.next().map(str::to_owned) else {
        return Ok(Command::Help);
    };
    match cmd.as_str() {
        "--help" | "-h" | "help" => Ok(Command::Help),
        "route" => parse_route(&mut cur),
        "batch" => parse_batch(&mut cur),
        "analyze" => parse_analyze(&mut cur),
        "check" => parse_check(&mut cur),
        "channel" => parse_channel(&mut cur),
        "gen" => parse_gen(&mut cur),
        "chip" => parse_chip(&mut cur),
        "serve" => parse_serve(&mut cur),
        "client" => parse_client(&mut cur),
        "fuzz" => parse_fuzz(&mut cur),
        other => Err(err(format!("unknown command `{other}`"))),
    }
}

fn parse_route(cur: &mut Cursor) -> Result<Command, ParseArgsError> {
    let mut file = None;
    let mut router = SwitchRouterKind::default();
    let mut ascii = false;
    let mut svg = None;
    let mut save = None;
    let mut optimize = false;
    let mut trace = None;
    let mut metrics = false;
    let mut json = None;
    let mut analyze = false;
    let mut frontier = FrontierKind::default();
    while let Some(arg) = cur.next().map(str::to_owned) {
        match arg.as_str() {
            "--router" => {
                router = match cur.value_of("--router")?.as_str() {
                    "ripup" => SwitchRouterKind::Ripup,
                    "lee" => SwitchRouterKind::Lee,
                    "tiled" => SwitchRouterKind::Tiled,
                    other => return Err(err(format!("unknown switchbox router `{other}`"))),
                };
            }
            "--frontier" => frontier = cur.value_of("--frontier")?.parse().map_err(err)?,
            "--ascii" => ascii = true,
            "--svg" => svg = Some(cur.value_of("--svg")?),
            "--save" => save = Some(cur.value_of("--save")?),
            "--optimize" => optimize = true,
            "--trace" => trace = Some(cur.value_of("--trace")?),
            "--metrics" => metrics = true,
            "--json" => json = Some(cur.value_of("--json")?),
            "--analyze" => analyze = true,
            flag if flag.starts_with("--") => {
                return Err(err(format!("unknown flag `{flag}` for `route`")))
            }
            path => {
                if file.replace(path.to_owned()).is_some() {
                    return Err(err("`route` takes exactly one FILE"));
                }
            }
        }
    }
    let file = file.ok_or_else(|| err("`route` needs a FILE"))?;
    Ok(Command::Route {
        file,
        router,
        ascii,
        svg,
        save,
        optimize,
        trace,
        metrics,
        json,
        analyze,
        frontier,
    })
}

/// Parses one batch router name, as used by `--router`, `--fallback`,
/// and the serve protocol's `router` field.
pub(crate) fn batch_kind(name: &str) -> Result<BatchRouterKind, ParseArgsError> {
    match name {
        "ripup" => Ok(BatchRouterKind::Ripup),
        "lee" => Ok(BatchRouterKind::Lee),
        "lea" => Ok(BatchRouterKind::Lea),
        "dogleg" => Ok(BatchRouterKind::Dogleg),
        "greedy" => Ok(BatchRouterKind::Greedy),
        "yacr" => Ok(BatchRouterKind::Yacr),
        "swbox" => Ok(BatchRouterKind::Swbox),
        other => Err(err(format!("unknown batch router `{other}`"))),
    }
}

fn parse_batch(cur: &mut Cursor) -> Result<Command, ParseArgsError> {
    let mut files = Vec::new();
    let mut list = None;
    let mut router = BatchRouterKind::default();
    let mut jobs = 0usize;
    let mut json = None;
    let mut deadline_ms = None;
    let mut trace = None;
    let mut metrics = false;
    let mut analyze = false;
    let mut retries = None;
    let mut fallback = Vec::new();
    let mut journal = None;
    let mut resume = false;
    let mut frontier = FrontierKind::default();
    while let Some(arg) = cur.next().map(str::to_owned) {
        match arg.as_str() {
            "--router" => router = batch_kind(cur.value_of("--router")?.as_str())?,
            "--frontier" => frontier = cur.value_of("--frontier")?.parse().map_err(err)?,
            "--jobs" => {
                jobs = cur.value_of("--jobs")?.parse().map_err(|_| err("--jobs needs a number"))?;
                if jobs > 4096 {
                    return Err(err("--jobs must be at most 4096"));
                }
            }
            "--list" => list = Some(cur.value_of("--list")?),
            "--json" => json = Some(cur.value_of("--json")?),
            "--trace" => trace = Some(cur.value_of("--trace")?),
            "--metrics" => metrics = true,
            "--analyze" => analyze = true,
            "--deadline-ms" => {
                deadline_ms = Some(
                    cur.value_of("--deadline-ms")?
                        .parse()
                        .map_err(|_| err("--deadline-ms needs a number"))?,
                );
            }
            "--retries" => {
                let n: u32 = cur
                    .value_of("--retries")?
                    .parse()
                    .map_err(|_| err("--retries needs a number"))?;
                if n > 16 {
                    return Err(err("--retries must be at most 16"));
                }
                retries = Some(n);
            }
            "--fallback" => {
                for name in cur.value_of("--fallback")?.split(',') {
                    fallback.push(batch_kind(name.trim())?);
                }
            }
            "--journal" => journal = Some(cur.value_of("--journal")?),
            "--resume" => resume = true,
            flag if flag.starts_with("--") => {
                return Err(err(format!("unknown flag `{flag}` for `batch`")))
            }
            path => files.push(path.to_owned()),
        }
    }
    if files.is_empty() && list.is_none() {
        return Err(err("`batch` needs instance FILEs or --list"));
    }
    if resume && journal.is_none() {
        return Err(err("--resume requires --journal DIR"));
    }
    let supervised = retries.is_some() || !fallback.is_empty() || journal.is_some();
    if supervised && (trace.is_some() || metrics) {
        return Err(err(
            "--trace/--metrics cannot be combined with the supervised recovery flags \
             (--retries, --fallback, --journal): the supervised engine is unobserved",
        ));
    }
    Ok(Command::Batch {
        files,
        list,
        router,
        jobs,
        json,
        deadline_ms,
        trace,
        metrics,
        analyze,
        retries,
        fallback,
        journal,
        resume,
        frontier,
    })
}

fn parse_chip(cur: &mut Cursor) -> Result<Command, ParseArgsError> {
    // Defaults match `ChipGen::small`: a quick but multi-tile instance.
    let mut width = 96u32;
    let mut height = 96u32;
    let mut nets = 700u32;
    let mut macros = 6u32;
    let mut seed = 0u64;
    let mut tile = 16u32;
    let mut jobs = 0usize;
    let mut analyze = false;
    let mut order = ChipOrder::default();
    let mut retries = None;
    let mut fallback = false;
    let mut journal = None;
    let mut resume = false;
    let mut json = None;
    let num = |flag: &str, v: String| -> Result<u64, ParseArgsError> {
        v.parse().map_err(|_| err(format!("{flag} needs a number")))
    };
    while let Some(arg) = cur.next().map(str::to_owned) {
        match arg.as_str() {
            "--width" => width = num("--width", cur.value_of("--width")?)? as u32,
            "--height" => height = num("--height", cur.value_of("--height")?)? as u32,
            "--nets" => nets = num("--nets", cur.value_of("--nets")?)? as u32,
            "--macros" => macros = num("--macros", cur.value_of("--macros")?)? as u32,
            "--seed" => seed = num("--seed", cur.value_of("--seed")?)?,
            "--tile" => tile = num("--tile", cur.value_of("--tile")?)? as u32,
            "--jobs" => {
                jobs = num("--jobs", cur.value_of("--jobs")?)? as usize;
                if jobs > 4096 {
                    return Err(err("--jobs must be at most 4096"));
                }
            }
            "--analyze" => analyze = true,
            "--order" => {
                order = match cur.value_of("--order")?.as_str() {
                    "bbox" => ChipOrder::Bbox,
                    "features" => ChipOrder::Features,
                    other => {
                        return Err(err(format!(
                            "--order must be `bbox` or `features`, got `{other}`"
                        )))
                    }
                }
            }
            "--retries" => {
                let n: u32 = cur
                    .value_of("--retries")?
                    .parse()
                    .map_err(|_| err("--retries needs a number"))?;
                if n > 16 {
                    return Err(err("--retries must be at most 16"));
                }
                retries = Some(n);
            }
            "--fallback" => {
                let name = cur.value_of("--fallback")?;
                if name != "lee" {
                    return Err(err(format!("--fallback must be `lee` for `chip`, got `{name}`")));
                }
                fallback = true;
            }
            "--journal" => journal = Some(cur.value_of("--journal")?),
            "--resume" => resume = true,
            "--json" => json = Some(cur.value_of("--json")?),
            flag => return Err(err(format!("unknown flag `{flag}` for `chip`"))),
        }
    }
    if !(8..=4096).contains(&width) || !(8..=4096).contains(&height) {
        return Err(err("chip sides must be in 8..=4096"));
    }
    if nets == 0 {
        return Err(err("--nets must be at least 1"));
    }
    if tile == 0 {
        return Err(err("--tile must be at least 1"));
    }
    if resume && journal.is_none() {
        return Err(err("--resume requires --journal DIR"));
    }
    Ok(Command::Chip {
        width,
        height,
        nets,
        macros,
        seed,
        tile,
        jobs,
        analyze,
        order,
        retries,
        fallback,
        journal,
        resume,
        json,
    })
}

fn parse_analyze(cur: &mut Cursor) -> Result<Command, ParseArgsError> {
    let mut paths: Vec<String> = Vec::new();
    let mut chip = false;
    let mut tile: Option<u32> = None;
    let mut json = None;
    while let Some(arg) = cur.next().map(str::to_owned) {
        match arg.as_str() {
            "--chip" => chip = true,
            "--tile" => {
                let v = cur.value_of("--tile")?;
                let t: u32 = v.parse().map_err(|_| err("--tile needs a number"))?;
                if t == 0 {
                    return Err(err("--tile must be at least 1"));
                }
                tile = Some(t);
            }
            "--json" => json = Some(cur.value_of("--json")?),
            flag if flag.starts_with("--") => {
                return Err(err(format!("unknown flag `{flag}` for `analyze`")))
            }
            path => paths.push(path.to_owned()),
        }
    }
    if paths.len() > 2 {
        return Err(err("`analyze` takes INSTANCE and at most one ROUTES file"));
    }
    if tile.is_some() && !chip {
        return Err(err("--tile only applies to `analyze --chip`"));
    }
    if chip && paths.len() > 1 {
        return Err(err("`analyze --chip` analyzes the instance alone; drop the ROUTES file"));
    }
    let mut paths = paths.into_iter();
    let instance = paths.next().ok_or_else(|| err("`analyze` needs an INSTANCE"))?;
    Ok(Command::Analyze {
        instance,
        routes: paths.next(),
        chip: chip.then(|| tile.unwrap_or(16)),
        json,
    })
}

fn parse_check(cur: &mut Cursor) -> Result<Command, ParseArgsError> {
    let mut paths: Vec<String> = Vec::new();
    let mut svg = None;
    while let Some(arg) = cur.next().map(str::to_owned) {
        match arg.as_str() {
            "--svg" => svg = Some(cur.value_of("--svg")?),
            flag if flag.starts_with("--") => {
                return Err(err(format!("unknown flag `{flag}` for `check`")))
            }
            path => paths.push(path.to_owned()),
        }
    }
    let [instance, routes] =
        <[String; 2]>::try_from(paths).map_err(|_| err("`check` takes exactly INSTANCE ROUTES"))?;
    Ok(Command::Check { instance, routes, svg })
}

fn parse_channel(cur: &mut Cursor) -> Result<Command, ParseArgsError> {
    let mut file = None;
    let mut router = ChannelRouterKind::default();
    let mut tracks = None;
    let mut layers = 2u8;
    while let Some(arg) = cur.next().map(str::to_owned) {
        match arg.as_str() {
            "--router" => {
                router = match cur.value_of("--router")?.as_str() {
                    "ripup" => ChannelRouterKind::Ripup,
                    "lea" => ChannelRouterKind::Lea,
                    "dogleg" => ChannelRouterKind::Dogleg,
                    "greedy" => ChannelRouterKind::Greedy,
                    "yacr" => ChannelRouterKind::Yacr,
                    other => return Err(err(format!("unknown channel router `{other}`"))),
                };
            }
            "--tracks" => {
                tracks = Some(
                    cur.value_of("--tracks")?
                        .parse()
                        .map_err(|_| err("--tracks needs a number"))?,
                );
            }
            "--layers" => {
                layers = cur
                    .value_of("--layers")?
                    .parse()
                    .map_err(|_| err("--layers needs a number"))?;
                if !(2..=3).contains(&layers) {
                    return Err(err("--layers must be 2 or 3"));
                }
            }
            flag if flag.starts_with("--") => {
                return Err(err(format!("unknown flag `{flag}` for `channel`")))
            }
            path => {
                if file.replace(path.to_owned()).is_some() {
                    return Err(err("`channel` takes exactly one FILE"));
                }
            }
        }
    }
    let file = file.ok_or_else(|| err("`channel` needs a FILE"))?;
    Ok(Command::Channel { file, router, tracks, layers })
}

fn parse_gen(cur: &mut Cursor) -> Result<Command, ParseArgsError> {
    let kind = cur.next().map(str::to_owned).ok_or_else(|| err("`gen` needs a kind"))?;
    let mut width = None;
    let mut height = None;
    let mut nets = None;
    let mut seed = 0u64;
    let mut extra_pin_pct = 30u32;
    let mut window = 0usize;
    while let Some(arg) = cur.next().map(str::to_owned) {
        let num = |flag: &str, cur: &mut Cursor| -> Result<u64, ParseArgsError> {
            cur.value_of(flag)?.parse().map_err(|_| err(format!("{flag} needs a number")))
        };
        let narrow = |flag: &str, v: u64| -> Result<u32, ParseArgsError> {
            u32::try_from(v).map_err(|_| err(format!("{flag} value {v} is too large")))
        };
        match arg.as_str() {
            "--width" => width = Some(num("--width", cur)?),
            "--height" => height = Some(num("--height", cur)?),
            "--nets" => {
                let v = num("--nets", cur)?;
                nets = Some(narrow("--nets", v)?);
            }
            "--seed" => seed = num("--seed", cur)?,
            "--extra-pin-pct" => {
                let v = num("--extra-pin-pct", cur)?;
                extra_pin_pct = narrow("--extra-pin-pct", v)?;
            }
            "--window" => window = num("--window", cur)? as usize,
            flag => return Err(err(format!("unknown flag `{flag}` for `gen`"))),
        }
    }
    let width = width.ok_or_else(|| err("gen needs --width"))?;
    let nets = nets.ok_or_else(|| err("gen needs --nets"))?;
    let narrow = |flag: &str, v: u64| -> Result<u32, ParseArgsError> {
        u32::try_from(v).map_err(|_| err(format!("{flag} value {v} is too large")))
    };
    match kind.as_str() {
        "switchbox" => {
            let height = height.ok_or_else(|| err("gen switchbox needs --height"))?;
            Ok(Command::Gen(GenKind::Switchbox {
                width: narrow("--width", width)?,
                height: narrow("--height", height)?,
                nets,
                seed,
            }))
        }
        "channel" => Ok(Command::Gen(GenKind::Channel {
            width: width as usize,
            nets,
            extra_pin_pct,
            window,
            seed,
        })),
        other => Err(err(format!("unknown gen kind `{other}`"))),
    }
}

/// Shared `--socket`/`--tcp` handling for `serve` and `client`.
fn endpoint_flag(
    endpoint: &mut Option<ServeEndpoint>,
    value: ServeEndpoint,
) -> Result<(), ParseArgsError> {
    if endpoint.replace(value).is_some() {
        return Err(err("give exactly one of --socket PATH or --tcp ADDR"));
    }
    Ok(())
}

fn parse_serve(cur: &mut Cursor) -> Result<Command, ParseArgsError> {
    let mut endpoint = None;
    let mut workers = 0usize;
    let mut queue = 64usize;
    let mut deadline_ms = None;
    let mut journal = None;
    let mut resume = false;
    while let Some(arg) = cur.next().map(str::to_owned) {
        match arg.as_str() {
            "--socket" => {
                endpoint_flag(&mut endpoint, ServeEndpoint::Unix(cur.value_of("--socket")?))?;
            }
            "--tcp" => endpoint_flag(&mut endpoint, ServeEndpoint::Tcp(cur.value_of("--tcp")?))?,
            "--workers" => {
                workers = cur
                    .value_of("--workers")?
                    .parse()
                    .map_err(|_| err("--workers needs a number"))?;
                if workers > 1024 {
                    return Err(err("--workers must be at most 1024"));
                }
            }
            "--queue" => {
                queue =
                    cur.value_of("--queue")?.parse().map_err(|_| err("--queue needs a number"))?;
                if queue == 0 {
                    return Err(err("--queue must be at least 1"));
                }
            }
            "--deadline-ms" => {
                deadline_ms = Some(
                    cur.value_of("--deadline-ms")?
                        .parse()
                        .map_err(|_| err("--deadline-ms needs a number"))?,
                );
            }
            "--journal" => journal = Some(cur.value_of("--journal")?),
            "--resume" => resume = true,
            flag => return Err(err(format!("unknown flag `{flag}` for `serve`"))),
        }
    }
    let endpoint = endpoint.ok_or_else(|| err("`serve` needs --socket PATH or --tcp ADDR"))?;
    if resume && journal.is_none() {
        return Err(err("--resume requires --journal DIR (there is no log to replay without one)"));
    }
    Ok(Command::Serve { endpoint, workers, queue, deadline_ms, journal, resume })
}

fn parse_client(cur: &mut Cursor) -> Result<Command, ParseArgsError> {
    let mut endpoint = None;
    let mut files = Vec::new();
    let mut router = BatchRouterKind::default();
    let mut deadline_ms = None;
    let mut priority = None;
    let mut events = false;
    let mut shutdown = false;
    while let Some(arg) = cur.next().map(str::to_owned) {
        match arg.as_str() {
            "--socket" => {
                endpoint_flag(&mut endpoint, ServeEndpoint::Unix(cur.value_of("--socket")?))?;
            }
            "--tcp" => endpoint_flag(&mut endpoint, ServeEndpoint::Tcp(cur.value_of("--tcp")?))?,
            "--router" => router = batch_kind(cur.value_of("--router")?.as_str())?,
            "--deadline-ms" => {
                deadline_ms = Some(
                    cur.value_of("--deadline-ms")?
                        .parse()
                        .map_err(|_| err("--deadline-ms needs a number"))?,
                );
            }
            "--priority" => {
                let p: u8 = cur
                    .value_of("--priority")?
                    .parse()
                    .map_err(|_| err("--priority needs a number"))?;
                if p > 9 {
                    return Err(err("--priority must be 0-9"));
                }
                priority = Some(p);
            }
            "--events" => events = true,
            "--shutdown" => shutdown = true,
            flag if flag.starts_with("--") => {
                return Err(err(format!("unknown flag `{flag}` for `client`")))
            }
            path => files.push(path.to_owned()),
        }
    }
    let endpoint = endpoint.ok_or_else(|| err("`client` needs --socket PATH or --tcp ADDR"))?;
    if files.is_empty() && !shutdown {
        return Err(err("`client` needs instance FILEs or --shutdown"));
    }
    Ok(Command::Client { endpoint, files, router, deadline_ms, priority, events, shutdown })
}

fn parse_fuzz(cur: &mut Cursor) -> Result<Command, ParseArgsError> {
    let mut seeds = None;
    let mut cases = Vec::new();
    let mut jobs = 0usize;
    let mut shrink = false;
    let mut out = None;
    while let Some(arg) = cur.next().map(str::to_owned) {
        match arg.as_str() {
            "--seeds" => {
                let spec = cur.value_of("--seeds")?;
                let (a, b) = spec
                    .split_once("..")
                    .ok_or_else(|| err("--seeds takes a range like 0..100"))?;
                let lo: u64 =
                    a.trim().parse().map_err(|_| err(format!("bad seed `{}`", a.trim())))?;
                let hi: u64 =
                    b.trim().parse().map_err(|_| err(format!("bad seed `{}`", b.trim())))?;
                if hi <= lo {
                    return Err(err(format!("--seeds range {lo}..{hi} is empty")));
                }
                seeds = Some((lo, hi));
            }
            "--jobs" => {
                jobs = cur.value_of("--jobs")?.parse().map_err(|_| err("--jobs needs a number"))?;
                if jobs > 4096 {
                    return Err(err("--jobs must be at most 4096"));
                }
            }
            "--shrink" => shrink = true,
            "--out" => out = Some(cur.value_of("--out")?),
            flag if flag.starts_with("--") => {
                return Err(err(format!("unknown flag `{flag}` for `fuzz`")))
            }
            path => cases.push(path.to_owned()),
        }
    }
    if seeds.is_none() && cases.is_empty() {
        return Err(err("`fuzz` needs --seeds A..B or case FILEs to replay"));
    }
    Ok(Command::Fuzz { seeds, cases, jobs, shrink, out })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(line: &str) -> Result<Command, ParseArgsError> {
        parse_args(line.split_whitespace().map(str::to_owned))
    }

    #[test]
    fn route_defaults() {
        assert_eq!(
            parse("route box.sb").unwrap(),
            Command::Route {
                file: "box.sb".into(),
                router: SwitchRouterKind::Ripup,
                ascii: false,
                svg: None,
                save: None,
                optimize: false,
                trace: None,
                metrics: false,
                json: None,
                analyze: false,
                frontier: FrontierKind::Buckets,
            }
        );
    }

    #[test]
    fn route_all_flags() {
        assert_eq!(
            parse(
                "route box.sb --router lee --ascii --svg out.svg --optimize \
                 --trace ev.ldj --metrics --json rep.json --analyze"
            )
            .unwrap(),
            Command::Route {
                file: "box.sb".into(),
                router: SwitchRouterKind::Lee,
                ascii: true,
                svg: Some("out.svg".into()),
                save: None,
                optimize: true,
                trace: Some("ev.ldj".into()),
                metrics: true,
                json: Some("rep.json".into()),
                analyze: true,
                frontier: FrontierKind::Buckets,
            }
        );
    }

    #[test]
    fn batch_flags() {
        assert_eq!(
            parse("batch a.sb b.sb --jobs 8 --json out.json --metrics --analyze").unwrap(),
            Command::Batch {
                files: vec!["a.sb".into(), "b.sb".into()],
                list: None,
                router: BatchRouterKind::Ripup,
                jobs: 8,
                json: Some("out.json".into()),
                deadline_ms: None,
                trace: None,
                metrics: true,
                analyze: true,
                retries: None,
                fallback: vec![],
                journal: None,
                resume: false,
                frontier: FrontierKind::Buckets,
            }
        );
        assert_eq!(
            parse("batch --list all.txt --router lee --deadline-ms 500 --trace ev.ldj").unwrap(),
            Command::Batch {
                files: vec![],
                list: Some("all.txt".into()),
                router: BatchRouterKind::Lee,
                jobs: 0,
                json: None,
                deadline_ms: Some(500),
                trace: Some("ev.ldj".into()),
                metrics: false,
                analyze: false,
                retries: None,
                fallback: vec![],
                journal: None,
                resume: false,
                frontier: FrontierKind::Buckets,
            }
        );
        assert!(parse("batch").unwrap_err().to_string().contains("--list"));
        assert!(parse("batch a.sb --router bogus").unwrap_err().to_string().contains("bogus"));
        assert!(parse("batch a.sb --jobs x").unwrap_err().to_string().contains("number"));
    }

    #[test]
    fn batch_supervised_flags() {
        assert_eq!(
            parse("batch a.sb --retries 2 --fallback lee,swbox --journal runs/j --resume").unwrap(),
            Command::Batch {
                files: vec!["a.sb".into()],
                list: None,
                router: BatchRouterKind::Ripup,
                jobs: 0,
                json: None,
                deadline_ms: None,
                trace: None,
                metrics: false,
                analyze: false,
                retries: Some(2),
                fallback: vec![BatchRouterKind::Lee, BatchRouterKind::Swbox],
                journal: Some("runs/j".into()),
                resume: true,
                frontier: FrontierKind::Buckets,
            }
        );
        // --retries 0 still selects the supervised engine.
        assert!(matches!(
            parse("batch a.sb --retries 0").unwrap(),
            Command::Batch { retries: Some(0), .. }
        ));
        assert!(parse("batch a.sb --retries x").unwrap_err().to_string().contains("number"));
        assert!(parse("batch a.sb --retries 17").unwrap_err().to_string().contains("at most 16"));
        assert!(parse("batch a.sb --fallback bogus").unwrap_err().to_string().contains("bogus"));
        assert!(parse("batch a.sb --resume").unwrap_err().to_string().contains("--journal"));
        let msg = parse("batch a.sb --retries 1 --metrics").unwrap_err().to_string();
        assert!(msg.contains("supervised"), "{msg}");
        let msg = parse("batch a.sb --journal j --trace ev.ldj").unwrap_err().to_string();
        assert!(msg.contains("supervised"), "{msg}");
    }

    #[test]
    fn chip_flags() {
        assert_eq!(
            parse("chip").unwrap(),
            Command::Chip {
                width: 96,
                height: 96,
                nets: 700,
                macros: 6,
                seed: 0,
                tile: 16,
                jobs: 0,
                analyze: false,
                order: ChipOrder::Bbox,
                retries: None,
                fallback: false,
                journal: None,
                resume: false,
                json: None,
            }
        );
        assert_eq!(
            parse(
                "chip --width 352 --height 352 --nets 10560 --macros 24 --seed 7 --tile 32 \
                   --jobs 4 --analyze --order features --retries 2 --fallback lee \
                   --journal chipdir --resume --json chip.json"
            )
            .unwrap(),
            Command::Chip {
                width: 352,
                height: 352,
                nets: 10560,
                macros: 24,
                seed: 7,
                tile: 32,
                jobs: 4,
                analyze: true,
                order: ChipOrder::Features,
                retries: Some(2),
                fallback: true,
                journal: Some("chipdir".into()),
                resume: true,
                json: Some("chip.json".into()),
            }
        );
        assert!(parse("chip --width 4").unwrap_err().to_string().contains("8..=4096"));
        assert!(parse("chip --tile 0").unwrap_err().to_string().contains("--tile"));
        assert!(parse("chip --nets 0").unwrap_err().to_string().contains("--nets"));
        assert!(parse("chip --jobs 9999").unwrap_err().to_string().contains("4096"));
        assert!(parse("chip extra.sb").unwrap_err().to_string().contains("unknown flag"));
        assert!(parse("chip --order sideways").unwrap_err().to_string().contains("--order"));
    }

    #[test]
    fn chip_supervision_flags() {
        // --retries 0 still selects the supervised tile stage.
        assert!(matches!(
            parse("chip --retries 0").unwrap(),
            Command::Chip { retries: Some(0), .. }
        ));
        assert!(parse("chip --retries 17").unwrap_err().to_string().contains("at most 16"));
        assert!(parse("chip --fallback maze").unwrap_err().to_string().contains("lee"));
        // Resuming needs somewhere to resume *from*.
        let msg = parse("chip --resume").unwrap_err().to_string();
        assert!(msg.contains("--resume requires --journal DIR"), "{msg}");
        let msg = parse("chip --resume --retries 2").unwrap_err().to_string();
        assert!(msg.contains("--resume requires --journal DIR"), "{msg}");
        assert!(matches!(
            parse("chip --journal d --resume").unwrap(),
            Command::Chip { journal: Some(_), resume: true, .. }
        ));
    }

    #[test]
    fn frontier_flag() {
        assert!(matches!(
            parse("route box.sb --frontier heap").unwrap(),
            Command::Route { frontier: FrontierKind::Heap, .. }
        ));
        assert!(matches!(
            parse("batch a.sb --frontier buckets").unwrap(),
            Command::Batch { frontier: FrontierKind::Buckets, .. }
        ));
        // The default is the bucket queue.
        assert!(matches!(
            parse("route box.sb").unwrap(),
            Command::Route { frontier: FrontierKind::Buckets, .. }
        ));
        let msg = parse("route box.sb --frontier fibonacci").unwrap_err().to_string();
        assert!(msg.contains("fibonacci"), "{msg}");
    }

    #[test]
    fn channel_routers() {
        for (name, kind) in [
            ("ripup", ChannelRouterKind::Ripup),
            ("lea", ChannelRouterKind::Lea),
            ("dogleg", ChannelRouterKind::Dogleg),
            ("greedy", ChannelRouterKind::Greedy),
            ("yacr", ChannelRouterKind::Yacr),
        ] {
            let cmd = parse(&format!("channel c.ch --router {name}")).unwrap();
            assert_eq!(
                cmd,
                Command::Channel { file: "c.ch".into(), router: kind, tracks: None, layers: 2 }
            );
        }
        assert_eq!(
            parse("channel c.ch --tracks 12").unwrap(),
            Command::Channel {
                file: "c.ch".into(),
                router: ChannelRouterKind::Ripup,
                tracks: Some(12),
                layers: 2
            }
        );
    }

    #[test]
    fn gen_commands() {
        assert_eq!(
            parse("gen switchbox --width 10 --height 8 --nets 6 --seed 3").unwrap(),
            Command::Gen(GenKind::Switchbox { width: 10, height: 8, nets: 6, seed: 3 })
        );
        assert_eq!(
            parse("gen channel --width 30 --nets 12 --window 10").unwrap(),
            Command::Gen(GenKind::Channel {
                width: 30,
                nets: 12,
                extra_pin_pct: 30,
                window: 10,
                seed: 0
            })
        );
    }

    #[test]
    fn fuzz_flags() {
        assert_eq!(
            parse("fuzz --seeds 0..100 --shrink --out findings --jobs 2").unwrap(),
            Command::Fuzz {
                seeds: Some((0, 100)),
                cases: vec![],
                jobs: 2,
                shrink: true,
                out: Some("findings".into()),
            }
        );
        assert_eq!(
            parse("fuzz corpus/a.case corpus/b.case").unwrap(),
            Command::Fuzz {
                seeds: None,
                cases: vec!["corpus/a.case".into(), "corpus/b.case".into()],
                jobs: 0,
                shrink: false,
                out: None,
            }
        );
        assert!(parse("fuzz").unwrap_err().to_string().contains("--seeds"));
        assert!(parse("fuzz --seeds 7").unwrap_err().to_string().contains("range"));
        assert!(parse("fuzz --seeds 9..9").unwrap_err().to_string().contains("empty"));
        assert!(parse("fuzz --seeds x..3").unwrap_err().to_string().contains("bad seed"));
    }

    #[test]
    fn serve_flags() {
        assert_eq!(
            parse("serve --socket /tmp/v.sock").unwrap(),
            Command::Serve {
                endpoint: ServeEndpoint::Unix("/tmp/v.sock".into()),
                workers: 0,
                queue: 64,
                deadline_ms: None,
                journal: None,
                resume: false,
            }
        );
        assert_eq!(
            parse(
                "serve --tcp 127.0.0.1:7777 --workers 2 --queue 8 --deadline-ms 500 \
                 --journal runs/j --resume"
            )
            .unwrap(),
            Command::Serve {
                endpoint: ServeEndpoint::Tcp("127.0.0.1:7777".into()),
                workers: 2,
                queue: 8,
                deadline_ms: Some(500),
                journal: Some("runs/j".into()),
                resume: true,
            }
        );
        assert!(parse("serve").unwrap_err().to_string().contains("--socket"));
        let msg = parse("serve --socket a --tcp b").unwrap_err().to_string();
        assert!(msg.contains("exactly one"), "{msg}");
        assert!(parse("serve --socket s --queue 0").unwrap_err().to_string().contains("at least"));
        // --resume without --journal must fail loudly, not be ignored.
        let msg = parse("serve --socket s --resume").unwrap_err().to_string();
        assert!(msg.contains("--journal"), "{msg}");
    }

    #[test]
    fn client_flags() {
        assert_eq!(
            parse("client --socket /tmp/v.sock a.sb b.sb --router lee --priority 7 --events")
                .unwrap(),
            Command::Client {
                endpoint: ServeEndpoint::Unix("/tmp/v.sock".into()),
                files: vec!["a.sb".into(), "b.sb".into()],
                router: BatchRouterKind::Lee,
                deadline_ms: None,
                priority: Some(7),
                events: true,
                shutdown: false,
            }
        );
        assert_eq!(
            parse("client --tcp 127.0.0.1:7777 --shutdown").unwrap(),
            Command::Client {
                endpoint: ServeEndpoint::Tcp("127.0.0.1:7777".into()),
                files: vec![],
                router: BatchRouterKind::Ripup,
                deadline_ms: None,
                priority: None,
                events: false,
                shutdown: true,
            }
        );
        assert!(parse("client --socket s").unwrap_err().to_string().contains("FILE"));
        assert!(parse("client a.sb").unwrap_err().to_string().contains("--socket"));
        assert!(parse("client --socket s a.sb --priority 10")
            .unwrap_err()
            .to_string()
            .contains("0-9"));
    }

    #[test]
    fn analyze_flags() {
        assert_eq!(
            parse("analyze box.sb").unwrap(),
            Command::Analyze { instance: "box.sb".into(), routes: None, chip: None, json: None }
        );
        assert_eq!(
            parse("analyze box.sb box.routes --json rep.json").unwrap(),
            Command::Analyze {
                instance: "box.sb".into(),
                routes: Some("box.routes".into()),
                chip: None,
                json: Some("rep.json".into()),
            }
        );
        assert_eq!(
            parse("analyze box.sb --chip").unwrap(),
            Command::Analyze {
                instance: "box.sb".into(),
                routes: None,
                chip: Some(16),
                json: None
            }
        );
        assert_eq!(
            parse("analyze box.sb --chip --tile 8 --json rep.json").unwrap(),
            Command::Analyze {
                instance: "box.sb".into(),
                routes: None,
                chip: Some(8),
                json: Some("rep.json".into()),
            }
        );
        assert!(parse("analyze").unwrap_err().to_string().contains("INSTANCE"));
        assert!(parse("analyze a b c").unwrap_err().to_string().contains("at most one"));
        assert!(parse("analyze a --bogus").unwrap_err().to_string().contains("--bogus"));
        assert!(parse("analyze a --tile 8").unwrap_err().to_string().contains("--chip"));
        assert!(parse("analyze a --chip --tile 0").unwrap_err().to_string().contains("--tile"));
        assert!(parse("analyze a b --chip").unwrap_err().to_string().contains("ROUTES"));
    }

    #[test]
    fn help_variants() {
        assert_eq!(parse("").unwrap(), Command::Help);
        assert_eq!(parse("--help").unwrap(), Command::Help);
        assert_eq!(parse("help").unwrap(), Command::Help);
    }

    #[test]
    fn errors_are_descriptive() {
        assert!(parse("frobnicate").unwrap_err().to_string().contains("unknown command"));
        assert!(parse("route").unwrap_err().to_string().contains("FILE"));
        assert!(parse("route a b").unwrap_err().to_string().contains("exactly one"));
        assert!(parse("route f --router bogus").unwrap_err().to_string().contains("bogus"));
        assert!(parse("channel f --tracks x").unwrap_err().to_string().contains("number"));
        assert!(parse("gen switchbox --width 5 --nets 3")
            .unwrap_err()
            .to_string()
            .contains("--height"));
    }
}
