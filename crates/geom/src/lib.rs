//! Grid geometry primitives for detailed routing.
//!
//! This crate is the foundation of the `vlsi-route` workspace. It defines
//! the small, copyable value types every router manipulates:
//!
//! * [`Point`] — an integer grid coordinate,
//! * [`Dir`] — the four Manhattan directions,
//! * [`Axis`] and [`Layer`] — wiring axes and the two metal layers of the
//!   classic two-layer routing model,
//! * [`Rect`] — an inclusive axis-aligned rectangle of grid cells,
//! * [`Segment`] — an axis-aligned run of grid cells,
//! * [`Region`] — a rectilinear region expressed as a union of rectangles,
//!   used to describe irregular routing-area boundaries.
//!
//! Everything here is deliberately dependency-free and `Copy`-friendly so
//! the routers can treat geometry as plain data.
//!
//! # Examples
//!
//! ```
//! use route_geom::{Point, Rect, Dir};
//!
//! let r = Rect::new(Point::new(0, 0), Point::new(3, 2));
//! assert_eq!(r.area(), 12);
//! assert!(r.contains(Point::new(3, 2)));
//! assert_eq!(Point::new(1, 1).step(Dir::East), Point::new(2, 1));
//! ```

#![warn(missing_docs)]

mod dir;
mod layer;
mod point;
mod rect;
mod region;
mod segment;

pub use dir::Dir;
pub use layer::{Axis, Layer, NUM_LAYERS};
pub use point::Point;
pub use rect::Rect;
pub use region::Region;
pub use segment::Segment;
