use std::fmt;

use crate::Axis;

/// One of the four Manhattan directions on the routing grid.
///
/// # Examples
///
/// ```
/// use route_geom::{Axis, Dir};
///
/// assert_eq!(Dir::North.opposite(), Dir::South);
/// assert_eq!(Dir::East.axis(), Axis::Horizontal);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Dir {
    /// Towards larger `y`.
    North,
    /// Towards smaller `y`.
    South,
    /// Towards larger `x`.
    East,
    /// Towards smaller `x`.
    West,
}

impl Dir {
    /// All four directions, in a fixed deterministic order.
    pub const ALL: [Dir; 4] = [Dir::North, Dir::South, Dir::East, Dir::West];

    /// The `(dx, dy)` unit step for this direction.
    #[inline]
    pub const fn delta(self) -> (i32, i32) {
        match self {
            Dir::North => (0, 1),
            Dir::South => (0, -1),
            Dir::East => (1, 0),
            Dir::West => (-1, 0),
        }
    }

    /// The direction pointing the opposite way.
    #[inline]
    pub const fn opposite(self) -> Dir {
        match self {
            Dir::North => Dir::South,
            Dir::South => Dir::North,
            Dir::East => Dir::West,
            Dir::West => Dir::East,
        }
    }

    /// The axis this direction travels along.
    #[inline]
    pub const fn axis(self) -> Axis {
        match self {
            Dir::North | Dir::South => Axis::Vertical,
            Dir::East | Dir::West => Axis::Horizontal,
        }
    }

    /// The two directions perpendicular to this one.
    #[inline]
    pub const fn perpendicular(self) -> [Dir; 2] {
        match self.axis() {
            Axis::Vertical => [Dir::East, Dir::West],
            Axis::Horizontal => [Dir::North, Dir::South],
        }
    }
}

impl fmt::Display for Dir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Dir::North => "N",
            Dir::South => "S",
            Dir::East => "E",
            Dir::West => "W",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opposite_is_involution() {
        for d in Dir::ALL {
            assert_eq!(d.opposite().opposite(), d);
        }
    }

    #[test]
    fn delta_of_opposite_negates() {
        for d in Dir::ALL {
            let (dx, dy) = d.delta();
            let (ox, oy) = d.opposite().delta();
            assert_eq!((dx, dy), (-ox, -oy));
        }
    }

    #[test]
    fn perpendicular_directions_cross_axes() {
        for d in Dir::ALL {
            for p in d.perpendicular() {
                assert_ne!(p.axis(), d.axis());
            }
        }
    }

    #[test]
    fn axis_assignment() {
        assert_eq!(Dir::North.axis(), Axis::Vertical);
        assert_eq!(Dir::South.axis(), Axis::Vertical);
        assert_eq!(Dir::East.axis(), Axis::Horizontal);
        assert_eq!(Dir::West.axis(), Axis::Horizontal);
    }
}
