use std::fmt;

use crate::Point;

/// An inclusive, axis-aligned rectangle of grid cells.
///
/// Both corners are part of the rectangle, so a `Rect` is never empty: the
/// smallest rectangle is a single cell. Corners are normalised on
/// construction, so `min() <= max()` componentwise always holds.
///
/// # Examples
///
/// ```
/// use route_geom::{Point, Rect};
///
/// let r = Rect::new(Point::new(5, 3), Point::new(1, 7));
/// assert_eq!(r.min(), Point::new(1, 3));
/// assert_eq!(r.max(), Point::new(5, 7));
/// assert_eq!(r.width(), 5);
/// assert_eq!(r.height(), 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rect {
    min: Point,
    max: Point,
}

impl Rect {
    /// Creates the rectangle spanning the two corner cells (inclusive).
    ///
    /// Corners may be given in any order.
    pub fn new(a: Point, b: Point) -> Self {
        Rect {
            min: Point::new(a.x.min(b.x), a.y.min(b.y)),
            max: Point::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// Creates a rectangle from its lower-left corner and cell dimensions.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `height` is zero.
    pub fn with_size(origin: Point, width: u32, height: u32) -> Self {
        assert!(width > 0 && height > 0, "rect dimensions must be non-zero");
        Rect::new(origin, Point::new(origin.x + width as i32 - 1, origin.y + height as i32 - 1))
    }

    /// Single-cell rectangle.
    pub fn cell(p: Point) -> Self {
        Rect::new(p, p)
    }

    /// Lower-left (minimum) corner.
    #[inline]
    pub const fn min(&self) -> Point {
        self.min
    }

    /// Upper-right (maximum) corner.
    #[inline]
    pub const fn max(&self) -> Point {
        self.max
    }

    /// Number of columns covered.
    #[inline]
    pub const fn width(&self) -> u32 {
        (self.max.x - self.min.x) as u32 + 1
    }

    /// Number of rows covered.
    #[inline]
    pub const fn height(&self) -> u32 {
        (self.max.y - self.min.y) as u32 + 1
    }

    /// Number of cells covered.
    #[inline]
    pub const fn area(&self) -> u64 {
        self.width() as u64 * self.height() as u64
    }

    /// Whether `p` lies inside the rectangle (borders included).
    #[inline]
    pub const fn contains(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Whether the two rectangles share at least one cell.
    pub fn intersects(&self, other: &Rect) -> bool {
        self.min.x <= other.max.x
            && other.min.x <= self.max.x
            && self.min.y <= other.max.y
            && other.min.y <= self.max.y
    }

    /// The shared cells of two rectangles, if any.
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        if !self.intersects(other) {
            return None;
        }
        Some(Rect {
            min: Point::new(self.min.x.max(other.min.x), self.min.y.max(other.min.y)),
            max: Point::new(self.max.x.min(other.max.x), self.max.y.min(other.max.y)),
        })
    }

    /// The smallest rectangle containing both rectangles.
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            min: Point::new(self.min.x.min(other.min.x), self.min.y.min(other.min.y)),
            max: Point::new(self.max.x.max(other.max.x), self.max.y.max(other.max.y)),
        }
    }

    /// The rectangle grown by `margin` cells on every side.
    pub fn inflate(&self, margin: u32) -> Rect {
        let m = margin as i32;
        Rect {
            min: Point::new(self.min.x - m, self.min.y - m),
            max: Point::new(self.max.x + m, self.max.y + m),
        }
    }

    /// Iterates over every cell, row-major from the lower-left corner.
    pub fn cells(&self) -> Cells {
        Cells { rect: *self, next: Some(self.min) }
    }

    /// Whether `p` lies on the rectangle's one-cell-wide border ring.
    pub fn on_border(&self, p: Point) -> bool {
        self.contains(p)
            && (p.x == self.min.x || p.x == self.max.x || p.y == self.min.y || p.y == self.max.y)
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}..{}]", self.min, self.max)
    }
}

/// Iterator over the cells of a [`Rect`], produced by [`Rect::cells`].
#[derive(Debug, Clone)]
pub struct Cells {
    rect: Rect,
    next: Option<Point>,
}

impl Iterator for Cells {
    type Item = Point;

    fn next(&mut self) -> Option<Point> {
        let cur = self.next?;
        self.next = if cur.x < self.rect.max.x {
            Some(Point::new(cur.x + 1, cur.y))
        } else if cur.y < self.rect.max.y {
            Some(Point::new(self.rect.min.x, cur.y + 1))
        } else {
            None
        };
        Some(cur)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = match self.next {
            None => 0,
            Some(p) => {
                let w = self.rect.width() as u64;
                let full_rows = (self.rect.max.y - p.y) as u64;
                let in_row = (self.rect.max.x - p.x) as u64 + 1;
                (full_rows * w + in_row) as usize
            }
        };
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for Cells {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corners_normalise() {
        let r = Rect::new(Point::new(4, 1), Point::new(-2, 8));
        assert_eq!(r.min(), Point::new(-2, 1));
        assert_eq!(r.max(), Point::new(4, 8));
    }

    #[test]
    fn with_size_matches_dims() {
        let r = Rect::with_size(Point::new(2, 3), 4, 5);
        assert_eq!(r.width(), 4);
        assert_eq!(r.height(), 5);
        assert_eq!(r.area(), 20);
        assert_eq!(r.max(), Point::new(5, 7));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn with_size_rejects_zero() {
        let _ = Rect::with_size(Point::new(0, 0), 0, 3);
    }

    #[test]
    fn contains_borders() {
        let r = Rect::new(Point::new(0, 0), Point::new(2, 2));
        assert!(r.contains(Point::new(0, 0)));
        assert!(r.contains(Point::new(2, 2)));
        assert!(!r.contains(Point::new(3, 2)));
        assert!(!r.contains(Point::new(-1, 0)));
    }

    #[test]
    fn intersection_and_union() {
        let a = Rect::new(Point::new(0, 0), Point::new(4, 4));
        let b = Rect::new(Point::new(3, 3), Point::new(6, 6));
        let i = a.intersection(&b).unwrap();
        assert_eq!(i, Rect::new(Point::new(3, 3), Point::new(4, 4)));
        let u = a.union(&b);
        assert_eq!(u, Rect::new(Point::new(0, 0), Point::new(6, 6)));
        let far = Rect::cell(Point::new(100, 100));
        assert!(a.intersection(&far).is_none());
        assert!(!a.intersects(&far));
    }

    #[test]
    fn cells_cover_exactly_area() {
        let r = Rect::new(Point::new(1, 1), Point::new(3, 2));
        let cells: Vec<Point> = r.cells().collect();
        assert_eq!(cells.len() as u64, r.area());
        assert_eq!(cells[0], Point::new(1, 1));
        assert_eq!(*cells.last().unwrap(), Point::new(3, 2));
        for c in &cells {
            assert!(r.contains(*c));
        }
    }

    #[test]
    fn cells_size_hint_is_exact() {
        let r = Rect::with_size(Point::new(0, 0), 5, 3);
        let mut it = r.cells();
        let mut remaining = 15;
        while let (hint, Some(p)) = (it.size_hint().0, it.next()) {
            assert_eq!(hint, remaining);
            remaining -= 1;
            let _ = p;
        }
        assert_eq!(remaining, 0);
    }

    #[test]
    fn on_border_ring() {
        let r = Rect::new(Point::new(0, 0), Point::new(3, 3));
        assert!(r.on_border(Point::new(0, 2)));
        assert!(r.on_border(Point::new(3, 0)));
        assert!(!r.on_border(Point::new(1, 1)));
        assert!(!r.on_border(Point::new(4, 4)));
    }

    #[test]
    fn inflate_grows_all_sides() {
        let r = Rect::cell(Point::new(5, 5)).inflate(2);
        assert_eq!(r.min(), Point::new(3, 3));
        assert_eq!(r.max(), Point::new(7, 7));
    }
}
