use std::fmt;

/// Number of routing layers the grid model supports (problems choose how
/// many of them are enabled; classic problems use the first two).
pub const NUM_LAYERS: usize = 3;

/// Wiring axis of a segment or a layer's preferred direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Axis {
    /// East–west wiring (constant `y`).
    Horizontal,
    /// North–south wiring (constant `x`).
    Vertical,
}

impl Axis {
    /// The other axis.
    #[inline]
    pub const fn other(self) -> Axis {
        match self {
            Axis::Horizontal => Axis::Vertical,
            Axis::Vertical => Axis::Horizontal,
        }
    }
}

impl fmt::Display for Axis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Axis::Horizontal => "H",
            Axis::Vertical => "V",
        })
    }
}

/// A metal layer of the grid model, stacked M1 (bottom) to M3 (top) in
/// the classic HVH arrangement.
///
/// [`Layer::M1`] and [`Layer::M3`] prefer horizontal wiring, [`Layer::M2`]
/// vertical, as in reserved-layer routing. Routers may still place
/// wrong-way segments on any layer; the preference only affects cost
/// models. Vias connect **adjacent** layers only (M1–M2 and M2–M3).
///
/// Problems choose how many layers are enabled: the classic two-layer
/// model blocks M3 entirely (see
/// `ProblemBuilder::layers` in `route-model`).
///
/// # Examples
///
/// ```
/// use route_geom::{Axis, Layer};
///
/// assert_eq!(Layer::M1.preferred_axis(), Axis::Horizontal);
/// assert_eq!(Layer::M2.above(), Some(Layer::M3));
/// assert_eq!(Layer::M3.above(), None);
/// assert!(Layer::M1.is_adjacent(Layer::M2));
/// assert!(!Layer::M1.is_adjacent(Layer::M3));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Layer {
    /// First metal layer; horizontal preference.
    M1,
    /// Second metal layer; vertical preference.
    M2,
    /// Third metal layer; horizontal preference (three-layer problems
    /// only).
    M3,
}

impl Layer {
    /// All layers, bottom to top.
    pub const ALL: [Layer; NUM_LAYERS] = [Layer::M1, Layer::M2, Layer::M3];

    /// Dense index of this layer (`M1` = 0, `M2` = 1, `M3` = 2).
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            Layer::M1 => 0,
            Layer::M2 => 1,
            Layer::M3 => 2,
        }
    }

    /// Layer with the given dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= NUM_LAYERS`.
    #[inline]
    pub const fn from_index(index: usize) -> Layer {
        match index {
            0 => Layer::M1,
            1 => Layer::M2,
            2 => Layer::M3,
            _ => panic!("layer index out of range"),
        }
    }

    /// The layer directly above, if any.
    #[inline]
    pub const fn above(self) -> Option<Layer> {
        match self {
            Layer::M1 => Some(Layer::M2),
            Layer::M2 => Some(Layer::M3),
            Layer::M3 => None,
        }
    }

    /// The layer directly below, if any.
    #[inline]
    pub const fn below(self) -> Option<Layer> {
        match self {
            Layer::M1 => None,
            Layer::M2 => Some(Layer::M1),
            Layer::M3 => Some(Layer::M2),
        }
    }

    /// The layers a via can reach from this one (directly adjacent).
    #[inline]
    pub fn adjacent(self) -> impl Iterator<Item = Layer> {
        [self.below(), self.above()].into_iter().flatten()
    }

    /// Whether a single via can connect this layer to `other`.
    #[inline]
    pub const fn is_adjacent(self, other: Layer) -> bool {
        self.index().abs_diff(other.index()) == 1
    }

    /// The lower layer of the via pair joining this layer and `other`,
    /// or `None` if they are not adjacent.
    #[inline]
    pub const fn via_pair_with(self, other: Layer) -> Option<Layer> {
        if self.is_adjacent(other) {
            Some(if self.index() < other.index() { self } else { other })
        } else {
            None
        }
    }

    /// Preferred wiring axis in the reserved-layer (HVH) model.
    #[inline]
    pub const fn preferred_axis(self) -> Axis {
        match self {
            Layer::M1 | Layer::M3 => Axis::Horizontal,
            Layer::M2 => Axis::Vertical,
        }
    }

    /// The lowest layer whose preferred axis is `axis`.
    #[inline]
    pub const fn preferring(axis: Axis) -> Layer {
        match axis {
            Axis::Horizontal => Layer::M1,
            Axis::Vertical => Layer::M2,
        }
    }
}

impl fmt::Display for Layer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Layer::M1 => "M1",
            Layer::M2 => "M2",
            Layer::M3 => "M3",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trips() {
        for l in Layer::ALL {
            assert_eq!(Layer::from_index(l.index()), l);
        }
    }

    #[test]
    fn stack_order() {
        assert_eq!(Layer::M1.above(), Some(Layer::M2));
        assert_eq!(Layer::M2.above(), Some(Layer::M3));
        assert_eq!(Layer::M3.above(), None);
        assert_eq!(Layer::M1.below(), None);
        assert_eq!(Layer::M2.below(), Some(Layer::M1));
        assert_eq!(Layer::M3.below(), Some(Layer::M2));
    }

    #[test]
    fn adjacency() {
        assert!(Layer::M1.is_adjacent(Layer::M2));
        assert!(Layer::M2.is_adjacent(Layer::M3));
        assert!(!Layer::M1.is_adjacent(Layer::M3));
        assert!(!Layer::M2.is_adjacent(Layer::M2));
        assert_eq!(Layer::M2.adjacent().collect::<Vec<_>>(), vec![Layer::M1, Layer::M3]);
        assert_eq!(Layer::M1.adjacent().collect::<Vec<_>>(), vec![Layer::M2]);
    }

    #[test]
    fn via_pairs() {
        assert_eq!(Layer::M2.via_pair_with(Layer::M1), Some(Layer::M1));
        assert_eq!(Layer::M2.via_pair_with(Layer::M3), Some(Layer::M2));
        assert_eq!(Layer::M1.via_pair_with(Layer::M3), None);
        assert_eq!(Layer::M1.via_pair_with(Layer::M1), None);
    }

    #[test]
    fn preferred_axes() {
        assert_eq!(Layer::M1.preferred_axis(), Axis::Horizontal);
        assert_eq!(Layer::M2.preferred_axis(), Axis::Vertical);
        assert_eq!(Layer::M3.preferred_axis(), Axis::Horizontal);
        for a in [Axis::Horizontal, Axis::Vertical] {
            assert_eq!(Layer::preferring(a).preferred_axis(), a);
        }
    }

    #[test]
    #[should_panic(expected = "layer index out of range")]
    fn from_index_rejects_out_of_range() {
        let _ = Layer::from_index(3);
    }

    #[test]
    fn axis_other() {
        assert_eq!(Axis::Horizontal.other(), Axis::Vertical);
        assert_eq!(Axis::Vertical.other(), Axis::Horizontal);
    }
}
