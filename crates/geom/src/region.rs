use std::fmt;

use crate::{Point, Rect};

/// A rectilinear region expressed as a union of rectangles.
///
/// Routing areas in the general detailed-routing problem are not
/// rectangular: macro-cell channels have staircase boundaries, and
/// switchboxes may carve out notches around cell corners. A `Region`
/// describes such an area as the union of any number of [`Rect`]s
/// (overlaps allowed) and answers membership queries.
///
/// # Examples
///
/// An L-shaped routing area:
///
/// ```
/// use route_geom::{Point, Rect, Region};
///
/// let region = Region::from_rects([
///     Rect::with_size(Point::new(0, 0), 10, 4),
///     Rect::with_size(Point::new(0, 0), 4, 10),
/// ]);
/// assert!(region.contains(Point::new(9, 3)));
/// assert!(region.contains(Point::new(3, 9)));
/// assert!(!region.contains(Point::new(9, 9)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Region {
    rects: Vec<Rect>,
    bounds: Rect,
}

impl Region {
    /// Creates a region from a non-empty collection of rectangles.
    ///
    /// # Panics
    ///
    /// Panics if the iterator yields no rectangles — an empty routing
    /// region is never meaningful.
    pub fn from_rects<I: IntoIterator<Item = Rect>>(rects: I) -> Self {
        let rects: Vec<Rect> = rects.into_iter().collect();
        assert!(!rects.is_empty(), "region must contain at least one rect");
        let bounds = rects[1..].iter().fold(rects[0], |acc, r| acc.union(r));
        Region { rects, bounds }
    }

    /// A simple rectangular region.
    pub fn rect(r: Rect) -> Self {
        Region { rects: vec![r], bounds: r }
    }

    /// Bounding box of the whole region.
    #[inline]
    pub const fn bounds(&self) -> Rect {
        self.bounds
    }

    /// The member rectangles (possibly overlapping).
    pub fn rects(&self) -> &[Rect] {
        &self.rects
    }

    /// Whether `p` lies inside the region.
    pub fn contains(&self, p: Point) -> bool {
        self.bounds.contains(p) && self.rects.iter().any(|r| r.contains(p))
    }

    /// Number of distinct cells in the region.
    ///
    /// Counted exactly (overlaps deduplicated) by scanning the bounding
    /// box, so this is `O(bounds.area())`.
    pub fn area(&self) -> u64 {
        self.bounds.cells().filter(|&p| self.contains(p)).count() as u64
    }

    /// Whether every cell of the bounding box belongs to the region.
    pub fn is_rectangular(&self) -> bool {
        self.area() == self.bounds.area()
    }

    /// Cells of the region that touch at least one cell outside it
    /// (or the bounding box edge) — the region's boundary ring.
    pub fn boundary_cells(&self) -> Vec<Point> {
        self.bounds
            .cells()
            .filter(|&p| self.contains(p) && p.neighbors().iter().any(|n| !self.contains(*n)))
            .collect()
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "region of {} rects, bounds {}", self.rects.len(), self.bounds)
    }
}

impl From<Rect> for Region {
    fn from(r: Rect) -> Self {
        Region::rect(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l_shape() -> Region {
        Region::from_rects([
            Rect::with_size(Point::new(0, 0), 6, 2),
            Rect::with_size(Point::new(0, 0), 2, 6),
        ])
    }

    #[test]
    fn membership() {
        let r = l_shape();
        assert!(r.contains(Point::new(5, 1)));
        assert!(r.contains(Point::new(1, 5)));
        assert!(!r.contains(Point::new(5, 5)));
        assert!(!r.contains(Point::new(-1, 0)));
    }

    #[test]
    fn area_deduplicates_overlap() {
        // The two rects overlap in a 2x2 square at the origin.
        let r = l_shape();
        assert_eq!(r.area(), 6 * 2 + 2 * 6 - 4);
    }

    #[test]
    fn rectangular_detection() {
        assert!(Region::rect(Rect::with_size(Point::new(0, 0), 3, 3)).is_rectangular());
        assert!(!l_shape().is_rectangular());
    }

    #[test]
    fn boundary_of_plain_rect_is_ring() {
        let r = Region::rect(Rect::with_size(Point::new(0, 0), 4, 4));
        let boundary = r.boundary_cells();
        assert_eq!(boundary.len(), 12); // 4x4 ring = 16 - 4 interior
        for p in boundary {
            assert!(r.bounds().on_border(p));
        }
    }

    #[test]
    #[should_panic(expected = "at least one rect")]
    fn empty_region_rejected() {
        let _ = Region::from_rects(std::iter::empty());
    }

    #[test]
    fn from_rect_conversion() {
        let rect = Rect::with_size(Point::new(1, 1), 2, 2);
        let region: Region = rect.into();
        assert_eq!(region.bounds(), rect);
    }
}
