use std::fmt;

use crate::Dir;

/// An integer coordinate on the routing grid.
///
/// The grid origin `(0, 0)` is the lower-left corner; `x` grows to the
/// east (right) and `y` grows to the north (up). Coordinates are signed so
/// that off-grid neighbours of boundary cells can be represented before
/// bounds checking.
///
/// # Examples
///
/// ```
/// use route_geom::{Point, Dir};
///
/// let p = Point::new(4, 7);
/// assert_eq!(p.step(Dir::North), Point::new(4, 8));
/// assert_eq!(p.manhattan(Point::new(1, 5)), 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Point {
    /// Column index (grows east).
    pub x: i32,
    /// Row index (grows north).
    pub y: i32,
}

impl Point {
    /// Creates a point at `(x, y)`.
    #[inline]
    pub const fn new(x: i32, y: i32) -> Self {
        Point { x, y }
    }

    /// The point one grid cell away in direction `dir`.
    #[inline]
    pub const fn step(self, dir: Dir) -> Self {
        let (dx, dy) = dir.delta();
        Point::new(self.x + dx, self.y + dy)
    }

    /// Manhattan (L1) distance to `other`.
    #[inline]
    pub const fn manhattan(self, other: Point) -> u32 {
        self.x.abs_diff(other.x) + self.y.abs_diff(other.y)
    }

    /// The four Manhattan neighbours, in [`Dir::ALL`] order.
    #[inline]
    pub fn neighbors(self) -> [Point; 4] {
        [self.step(Dir::North), self.step(Dir::South), self.step(Dir::East), self.step(Dir::West)]
    }

    /// Direction from `self` towards an axis-aligned neighbour `other`.
    ///
    /// Returns `None` if the points are equal or not on a shared axis.
    /// For non-adjacent collinear points the direction of travel is still
    /// returned, which is what segment iteration needs.
    pub fn dir_towards(self, other: Point) -> Option<Dir> {
        if self == other {
            return None;
        }
        if self.x == other.x {
            Some(if other.y > self.y { Dir::North } else { Dir::South })
        } else if self.y == other.y {
            Some(if other.x > self.x { Dir::East } else { Dir::West })
        } else {
            None
        }
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl From<(i32, i32)> for Point {
    fn from((x, y): (i32, i32)) -> Self {
        Point::new(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_in_all_directions() {
        let p = Point::new(0, 0);
        assert_eq!(p.step(Dir::North), Point::new(0, 1));
        assert_eq!(p.step(Dir::South), Point::new(0, -1));
        assert_eq!(p.step(Dir::East), Point::new(1, 0));
        assert_eq!(p.step(Dir::West), Point::new(-1, 0));
    }

    #[test]
    fn manhattan_is_symmetric() {
        let a = Point::new(3, -2);
        let b = Point::new(-1, 5);
        assert_eq!(a.manhattan(b), 11);
        assert_eq!(b.manhattan(a), 11);
        assert_eq!(a.manhattan(a), 0);
    }

    #[test]
    fn neighbors_are_distance_one() {
        let p = Point::new(9, 9);
        for n in p.neighbors() {
            assert_eq!(p.manhattan(n), 1);
        }
    }

    #[test]
    fn dir_towards_axis_aligned() {
        let p = Point::new(2, 2);
        assert_eq!(p.dir_towards(Point::new(2, 5)), Some(Dir::North));
        assert_eq!(p.dir_towards(Point::new(2, 0)), Some(Dir::South));
        assert_eq!(p.dir_towards(Point::new(7, 2)), Some(Dir::East));
        assert_eq!(p.dir_towards(Point::new(-1, 2)), Some(Dir::West));
        assert_eq!(p.dir_towards(p), None);
        assert_eq!(p.dir_towards(Point::new(3, 3)), None);
    }

    #[test]
    fn from_tuple() {
        let p: Point = (4, 5).into();
        assert_eq!(p, Point::new(4, 5));
    }

    #[test]
    fn display_format() {
        assert_eq!(Point::new(1, -2).to_string(), "(1, -2)");
    }
}
