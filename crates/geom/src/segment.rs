use std::fmt;

use crate::{Axis, Point};

/// An axis-aligned run of grid cells, endpoints inclusive.
///
/// A `Segment` is the unit in which routers reason about wires: a maximal
/// straight piece of a net's path on one layer. A single-cell segment is
/// allowed (it has no defined axis of travel and reports the axis it was
/// constructed with).
///
/// # Examples
///
/// ```
/// use route_geom::{Axis, Point, Segment};
///
/// let s = Segment::new(Point::new(2, 5), Point::new(6, 5)).unwrap();
/// assert_eq!(s.axis(), Axis::Horizontal);
/// assert_eq!(s.len(), 5);
/// assert!(s.contains(Point::new(4, 5)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Segment {
    a: Point,
    b: Point,
    axis: Axis,
}

impl Segment {
    /// Creates a segment between two collinear points (endpoints are
    /// normalised so `a() <= b()`).
    ///
    /// Returns `None` if the points are not axis-aligned. Equal points
    /// produce a single-cell segment with horizontal axis.
    pub fn new(a: Point, b: Point) -> Option<Self> {
        if a == b {
            return Some(Segment { a, b, axis: Axis::Horizontal });
        }
        if a.y == b.y {
            let (lo, hi) = if a.x <= b.x { (a, b) } else { (b, a) };
            Some(Segment { a: lo, b: hi, axis: Axis::Horizontal })
        } else if a.x == b.x {
            let (lo, hi) = if a.y <= b.y { (a, b) } else { (b, a) };
            Some(Segment { a: lo, b: hi, axis: Axis::Vertical })
        } else {
            None
        }
    }

    /// A horizontal segment on row `y` spanning columns `x0..=x1`.
    pub fn horizontal(y: i32, x0: i32, x1: i32) -> Self {
        Segment::new(Point::new(x0, y), Point::new(x1, y)).expect("same row is axis-aligned")
    }

    /// A vertical segment on column `x` spanning rows `y0..=y1`.
    pub fn vertical(x: i32, y0: i32, y1: i32) -> Self {
        Segment::new(Point::new(x, y0), Point::new(x, y1)).expect("same column is axis-aligned")
    }

    /// Lower/left endpoint.
    #[inline]
    pub const fn a(&self) -> Point {
        self.a
    }

    /// Upper/right endpoint.
    #[inline]
    pub const fn b(&self) -> Point {
        self.b
    }

    /// Axis of travel (horizontal for single-cell segments).
    #[inline]
    pub const fn axis(&self) -> Axis {
        self.axis
    }

    /// Number of cells covered, including both endpoints.
    #[inline]
    pub const fn len(&self) -> u32 {
        self.a.manhattan(self.b) + 1
    }

    /// Whether the segment covers exactly one cell.
    #[inline]
    pub const fn is_empty(&self) -> bool {
        false // a segment always covers at least one cell
    }

    /// Whether `p` lies on the segment.
    pub fn contains(&self, p: Point) -> bool {
        match self.axis {
            Axis::Horizontal => p.y == self.a.y && p.x >= self.a.x && p.x <= self.b.x,
            Axis::Vertical => p.x == self.a.x && p.y >= self.a.y && p.y <= self.b.y,
        }
    }

    /// Iterates over every covered cell from `a()` to `b()`.
    pub fn cells(&self) -> SegmentCells {
        SegmentCells { seg: *self, next: Some(self.a) }
    }

    /// Whether two segments share at least one cell.
    pub fn overlaps(&self, other: &Segment) -> bool {
        self.cells().any(|c| other.contains(c))
    }
}

impl fmt::Display for Segment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-{}", self.a, self.b)
    }
}

/// Iterator over the cells of a [`Segment`], produced by [`Segment::cells`].
#[derive(Debug, Clone)]
pub struct SegmentCells {
    seg: Segment,
    next: Option<Point>,
}

impl Iterator for SegmentCells {
    type Item = Point;

    fn next(&mut self) -> Option<Point> {
        let cur = self.next?;
        self.next = if cur == self.seg.b {
            None
        } else {
            match self.seg.axis {
                Axis::Horizontal => Some(Point::new(cur.x + 1, cur.y)),
                Axis::Vertical => Some(Point::new(cur.x, cur.y + 1)),
            }
        };
        Some(cur)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = match self.next {
            None => 0,
            Some(p) => p.manhattan(self.seg.b) as usize + 1,
        };
        (n, Some(n))
    }
}

impl ExactSizeIterator for SegmentCells {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_diagonal() {
        assert!(Segment::new(Point::new(0, 0), Point::new(1, 1)).is_none());
    }

    #[test]
    fn normalises_endpoints() {
        let s = Segment::new(Point::new(5, 2), Point::new(1, 2)).unwrap();
        assert_eq!(s.a(), Point::new(1, 2));
        assert_eq!(s.b(), Point::new(5, 2));
        let v = Segment::new(Point::new(3, 9), Point::new(3, 4)).unwrap();
        assert_eq!(v.a(), Point::new(3, 4));
        assert_eq!(v.b(), Point::new(3, 9));
    }

    #[test]
    fn single_cell_segment() {
        let s = Segment::new(Point::new(2, 2), Point::new(2, 2)).unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s.cells().count(), 1);
        assert!(s.contains(Point::new(2, 2)));
    }

    #[test]
    fn cells_enumerate_in_order() {
        let s = Segment::vertical(7, 1, 4);
        let cells: Vec<Point> = s.cells().collect();
        assert_eq!(
            cells,
            vec![Point::new(7, 1), Point::new(7, 2), Point::new(7, 3), Point::new(7, 4)]
        );
        assert_eq!(s.len() as usize, cells.len());
    }

    #[test]
    fn contains_and_overlaps() {
        let h = Segment::horizontal(3, 0, 5);
        let v = Segment::vertical(2, 0, 6);
        assert!(h.contains(Point::new(2, 3)));
        assert!(!h.contains(Point::new(2, 4)));
        assert!(h.overlaps(&v));
        let v2 = Segment::vertical(9, 0, 6);
        assert!(!h.overlaps(&v2));
    }

    #[test]
    fn size_hint_is_exact() {
        let s = Segment::horizontal(0, 0, 9);
        let it = s.cells();
        assert_eq!(it.size_hint(), (10, Some(10)));
        assert_eq!(it.len(), 10);
    }
}
