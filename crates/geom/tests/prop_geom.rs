//! Property-style tests for the geometry primitives, driven by a
//! deterministic in-file generator so the crate builds with zero
//! registry access.

use route_geom::{Dir, Point, Rect, Region, Segment};

/// Tiny deterministic generator (SplitMix64).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        ((u128::from(self.next()) * u128::from(bound)) >> 64) as u64
    }

    fn range_i32(&mut self, lo: i32, hi: i32) -> i32 {
        lo + self.below((hi - lo) as u64) as i32
    }

    fn coin(&mut self) -> bool {
        self.next() & 1 == 1
    }

    fn point(&mut self) -> Point {
        Point::new(self.range_i32(-50, 50), self.range_i32(-50, 50))
    }

    fn rect(&mut self) -> Rect {
        Rect::new(self.point(), self.point())
    }
}

const CASES: usize = 200;

#[test]
fn manhattan_triangle_inequality() {
    let mut rng = Rng(0xA110);
    for _ in 0..CASES {
        let (a, b, c) = (rng.point(), rng.point(), rng.point());
        assert!(a.manhattan(c) <= a.manhattan(b) + b.manhattan(c));
    }
}

#[test]
fn manhattan_zero_iff_equal() {
    let mut rng = Rng(0xA111);
    for _ in 0..CASES {
        let (a, b) = (rng.point(), rng.point());
        assert_eq!(a.manhattan(b) == 0, a == b);
        assert_eq!(a.manhattan(a), 0);
    }
}

#[test]
fn step_and_back_is_identity() {
    let mut rng = Rng(0xA112);
    for _ in 0..CASES {
        let p = rng.point();
        let dir = Dir::ALL[rng.below(4) as usize];
        assert_eq!(p.step(dir).step(dir.opposite()), p);
    }
}

#[test]
fn rect_contains_its_corners_and_cells() {
    let mut rng = Rng(0xA113);
    for _ in 0..CASES {
        let r = rng.rect();
        assert!(r.contains(r.min()));
        assert!(r.contains(r.max()));
        // Cell count equals area and all cells are inside.
        let cells: Vec<Point> = r.cells().collect();
        assert_eq!(cells.len() as u64, r.area());
        for c in cells {
            assert!(r.contains(c));
        }
    }
}

#[test]
fn rect_union_contains_both() {
    let mut rng = Rng(0xA114);
    for _ in 0..CASES {
        let (a, b) = (rng.rect(), rng.rect());
        let u = a.union(&b);
        assert!(u.contains(a.min()) && u.contains(a.max()));
        assert!(u.contains(b.min()) && u.contains(b.max()));
        assert!(u.area() >= a.area().max(b.area()));
    }
}

#[test]
fn rect_intersection_is_symmetric_and_contained() {
    let mut rng = Rng(0xA115);
    for _ in 0..CASES {
        let (a, b) = (rng.rect(), rng.rect());
        let ab = a.intersection(&b);
        let ba = b.intersection(&a);
        assert_eq!(ab, ba);
        if let Some(i) = ab {
            for c in i.cells() {
                assert!(a.contains(c) && b.contains(c));
            }
        } else {
            // Disjoint: no cell of a lies in b.
            assert!(a.cells().all(|c| !b.contains(c)));
        }
    }
}

#[test]
fn segment_cells_are_collinear_and_adjacent() {
    let mut rng = Rng(0xA116);
    for _ in 0..CASES {
        let a = rng.point();
        let len = rng.below(40) as i32;
        let b = if rng.coin() { Point::new(a.x + len, a.y) } else { Point::new(a.x, a.y + len) };
        let seg = Segment::new(a, b).expect("axis-aligned by construction");
        let cells: Vec<Point> = seg.cells().collect();
        assert_eq!(cells.len() as u32, seg.len());
        for w in cells.windows(2) {
            assert_eq!(w[0].manhattan(w[1]), 1);
        }
        for c in &cells {
            assert!(seg.contains(*c));
        }
    }
}

#[test]
fn region_area_bounded_by_bbox() {
    let mut rng = Rng(0xA117);
    for _ in 0..60 {
        let n = 1 + rng.below(5) as usize;
        let rects: Vec<Rect> = (0..n).map(|_| rng.rect()).collect();
        let region = Region::from_rects(rects.clone());
        let area = region.area();
        assert!(area <= region.bounds().area());
        assert!(area >= rects.iter().map(|r| r.area()).max().unwrap_or(0));
        // Membership agrees with the member rectangles.
        for p in region.bounds().cells() {
            let member = rects.iter().any(|r| r.contains(p));
            assert_eq!(member, region.contains(p));
        }
    }
}
