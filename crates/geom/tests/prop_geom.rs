//! Property-based tests for the geometry primitives.

use proptest::prelude::*;

use route_geom::{Dir, Point, Rect, Region, Segment};

fn arb_point() -> impl Strategy<Value = Point> {
    (-50i32..50, -50i32..50).prop_map(|(x, y)| Point::new(x, y))
}

fn arb_rect() -> impl Strategy<Value = Rect> {
    (arb_point(), arb_point()).prop_map(|(a, b)| Rect::new(a, b))
}

proptest! {
    #[test]
    fn manhattan_triangle_inequality(a in arb_point(), b in arb_point(), c in arb_point()) {
        prop_assert!(a.manhattan(c) <= a.manhattan(b) + b.manhattan(c));
    }

    #[test]
    fn manhattan_zero_iff_equal(a in arb_point(), b in arb_point()) {
        prop_assert_eq!(a.manhattan(b) == 0, a == b);
    }

    #[test]
    fn step_and_back_is_identity(p in arb_point(), dir_idx in 0usize..4) {
        let dir = Dir::ALL[dir_idx];
        prop_assert_eq!(p.step(dir).step(dir.opposite()), p);
    }

    #[test]
    fn rect_contains_its_corners_and_cells(r in arb_rect()) {
        prop_assert!(r.contains(r.min()));
        prop_assert!(r.contains(r.max()));
        // Cell count equals area and all cells are inside.
        let cells: Vec<Point> = r.cells().collect();
        prop_assert_eq!(cells.len() as u64, r.area());
        for c in cells {
            prop_assert!(r.contains(c));
        }
    }

    #[test]
    fn rect_union_contains_both(a in arb_rect(), b in arb_rect()) {
        let u = a.union(&b);
        prop_assert!(u.contains(a.min()) && u.contains(a.max()));
        prop_assert!(u.contains(b.min()) && u.contains(b.max()));
        prop_assert!(u.area() >= a.area().max(b.area()));
    }

    #[test]
    fn rect_intersection_is_symmetric_and_contained(a in arb_rect(), b in arb_rect()) {
        let ab = a.intersection(&b);
        let ba = b.intersection(&a);
        prop_assert_eq!(&ab, &ba);
        if let Some(i) = ab {
            for c in i.cells() {
                prop_assert!(a.contains(c) && b.contains(c));
            }
        } else {
            // Disjoint: no cell of a lies in b.
            prop_assert!(a.cells().all(|c| !b.contains(c)));
        }
    }

    #[test]
    fn segment_cells_are_collinear_and_adjacent(a in arb_point(), len in 0u32..40, horiz in any::<bool>()) {
        let b = if horiz {
            Point::new(a.x + len as i32, a.y)
        } else {
            Point::new(a.x, a.y + len as i32)
        };
        let seg = Segment::new(a, b).expect("axis-aligned by construction");
        let cells: Vec<Point> = seg.cells().collect();
        prop_assert_eq!(cells.len() as u32, seg.len());
        for w in cells.windows(2) {
            prop_assert_eq!(w[0].manhattan(w[1]), 1);
        }
        for c in &cells {
            prop_assert!(seg.contains(*c));
        }
    }

    #[test]
    fn region_area_bounded_by_bbox(rects in prop::collection::vec(arb_rect(), 1..6)) {
        let region = Region::from_rects(rects.clone());
        let area = region.area();
        prop_assert!(area <= region.bounds().area());
        prop_assert!(area >= rects.iter().map(|r| r.area()).max().unwrap_or(0));
        // Membership agrees with the member rectangles.
        for p in region.bounds().cells() {
            let member = rects.iter().any(|r| r.contains(p));
            prop_assert_eq!(member, region.contains(p));
        }
    }
}
