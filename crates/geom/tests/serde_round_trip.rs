//! JSON round-trip tests of the geometry types (`serde` feature).

#![cfg(feature = "serde")]

use route_geom::{Axis, Dir, Layer, Point, Rect, Region, Segment};

fn round_trip<T>(value: &T)
where
    T: serde::Serialize + serde::de::DeserializeOwned + PartialEq + std::fmt::Debug,
{
    let json = serde_json::to_string(value).expect("serializes");
    let back: T = serde_json::from_str(&json).expect("deserializes");
    assert_eq!(&back, value, "round trip changed the value: {json}");
}

#[test]
fn plain_types_round_trip() {
    round_trip(&Point::new(-3, 7));
    for d in Dir::ALL {
        round_trip(&d);
    }
    for l in Layer::ALL {
        round_trip(&l);
    }
    round_trip(&Axis::Horizontal);
}

#[test]
fn rect_round_trips_and_renormalises() {
    round_trip(&Rect::new(Point::new(1, 2), Point::new(5, 9)));
    // Swapped corners in the wire form are renormalised, not rejected.
    let swapped = r#"{"min":{"x":5,"y":9},"max":{"x":1,"y":2}}"#;
    let r: Rect = serde_json::from_str(swapped).expect("renormalises");
    assert_eq!(r.min(), Point::new(1, 2));
    assert_eq!(r.max(), Point::new(5, 9));
}

#[test]
fn segment_round_trips_and_validates() {
    round_trip(&Segment::horizontal(3, 0, 5));
    round_trip(&Segment::vertical(2, -1, 4));
    // Diagonal endpoints are rejected at deserialization time.
    let diagonal = r#"{"a":{"x":0,"y":0},"b":{"x":1,"y":1}}"#;
    let result: Result<Segment, _> = serde_json::from_str(diagonal);
    assert!(result.is_err(), "diagonal segment must not deserialize");
}

#[test]
fn region_round_trips_and_validates() {
    let region = Region::from_rects([
        Rect::with_size(Point::new(0, 0), 6, 2),
        Rect::with_size(Point::new(0, 0), 2, 6),
    ]);
    round_trip(&region);
    let empty = r#"{"rects":[]}"#;
    let result: Result<Region, _> = serde_json::from_str(empty);
    assert!(result.is_err(), "empty region must not deserialize");
}
