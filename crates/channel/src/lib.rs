//! Classic channel routers: the published baselines a rip-up/reroute
//! detailed router is evaluated against.
//!
//! A **channel** is a rectangular routing area with pins on its top and
//! bottom edges only, described by a [`ChannelSpec`] (two pin vectors).
//! The routers in this crate solve channels in the classic two-layer
//! reserved model — horizontal track segments on M1, vertical column
//! segments on M2 — and are judged by the number of **tracks** they need
//! versus the channel's lower-bound **density**:
//!
//! * [`lea`] — the Left-Edge Algorithm (Hashimoto–Stevens 1971): one
//!   track segment per net, no doglegs, fails on vertical-constraint
//!   cycles.
//! * [`dogleg`] — Deutsch's dogleg router (DAC 1976): splits multi-pin
//!   nets at internal pin columns, breaking cycles and lowering track
//!   counts.
//! * [`greedy`] — the Rivest–Fiduccia greedy router (DAC 1982): a
//!   column-by-column sweep that may exceed the channel on the right to
//!   finish split nets.
//! * [`yacr`] — a YACR-II-style track-assignment router: left-edge track
//!   assignment followed by maze patch-up of vertical conflicts.
//!
//! Every router can *realize* its abstract solution onto the shared
//! occupancy grid (see [`ChannelLayout::realize`]) so results are
//! independently checked by `route_verify` and comparable with the
//! general-region routers.
//!
//! # Examples
//!
//! ```
//! use route_channel::{ChannelSpec, lea};
//!
//! let spec = ChannelSpec::new(
//!     vec![1, 0, 2, 2],
//!     vec![0, 1, 2, 0],
//! )?;
//! assert_eq!(spec.density(), 1);
//! let solution = lea::route(&spec).expect("no vertical cycle");
//! assert!(solution.tracks >= spec.density() as usize);
//! # Ok::<(), route_channel::SpecError>(())
//! ```

#![warn(missing_docs)]

mod adapters;
mod graphs;
mod layout;
mod spec;

pub mod dogleg;
pub mod greedy;
pub mod lea;
pub mod swbox;
pub mod yacr;

pub use adapters::{DoglegRouter, GreedyRouter, LeaRouter, SwboxRouter, YacrRouter};
pub use graphs::{Vcg, ZoneTable};
pub use layout::{ChannelLayout, HSeg, RealizeError, VEnd, VSeg};
pub use spec::{ChannelSpec, SpecError};

/// Error returned by channel routers that cannot complete. Shared with
/// every other router in the workspace; the channel routers use the
/// `VerticalCycle` and `BudgetExhausted` variants.
pub use route_model::RouteError;
