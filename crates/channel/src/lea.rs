//! The Left-Edge Algorithm (Hashimoto–Stevens 1971).
//!
//! Each net occupies exactly one horizontal track segment spanning its
//! pin columns; tracks are filled top-to-bottom by repeatedly taking the
//! unplaced net with the leftmost edge that fits and whose vertical
//! constraints are satisfied. No doglegs: a cycle in the vertical
//! constraint graph makes the channel unroutable for this router — the
//! classic weakness the later routers fix.

use std::collections::BTreeMap;

use crate::{ChannelLayout, ChannelSpec, HSeg, RouteError, VEnd, VSeg, Vcg};

/// A left-edge solution: track assignment plus realizable layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeaSolution {
    /// Number of tracks used.
    pub tracks: usize,
    /// Track index (0 = top) per net number.
    pub track_of: BTreeMap<u32, usize>,
    /// The realizable geometry.
    pub layout: ChannelLayout,
}

/// Routes `spec` with the left-edge algorithm.
///
/// # Errors
///
/// Returns [`RouteError::VerticalCycle`] when the vertical constraint
/// graph is cyclic (no dogleg-free solution exists), or
/// [`RouteError::BudgetExhausted`] if placement stalls (defensive; cannot
/// happen for acyclic graphs).
pub fn route(spec: &ChannelSpec) -> Result<LeaSolution, RouteError> {
    let vcg = Vcg::from_spec(spec);
    if let Some(cycle) = vcg.find_cycle() {
        return Err(RouteError::VerticalCycle { cycle });
    }
    let items: Vec<(u32, usize, usize)> = spec
        .net_ids()
        .into_iter()
        .map(|n| {
            let (l, r) = spec.span(n).expect("net from spec");
            (n, l, r)
        })
        .collect();
    let track_of = place_left_edge(&items, &vcg, spec.width() * 2 + 2)?;
    let tracks = track_of.values().max().map_or(0, |&t| t + 1);

    let mut layout = ChannelLayout { tracks, ..ChannelLayout::default() };
    for &(net, x0, x1) in &items {
        let track = track_of[&net];
        layout.hsegs.push(HSeg { net, track, x0, x1 });
        for c in spec.pin_columns(net) {
            if spec.top(c) == net {
                layout.vsegs.push(VSeg { net, col: c, a: VEnd::Top, b: VEnd::Track(track) });
            }
            if spec.bottom(c) == net {
                layout.vsegs.push(VSeg { net, col: c, a: VEnd::Bottom, b: VEnd::Track(track) });
            }
        }
    }
    Ok(LeaSolution { tracks, track_of, layout })
}

/// Shared left-edge placement engine: assigns each `(key, x0, x1)` item a
/// track (0 = top) such that items on one track do not overlap (touching
/// endpoints also conflict) and every VCG edge points strictly downward.
///
/// Used by both the plain LEA and the dogleg router (on sub-nets).
pub(crate) fn place_left_edge(
    items: &[(u32, usize, usize)],
    vcg: &Vcg,
    max_tracks: usize,
) -> Result<BTreeMap<u32, usize>, RouteError> {
    let mut order: Vec<usize> = (0..items.len()).collect();
    order.sort_by_key(|&i| (items[i].1, items[i].2, items[i].0));

    let mut placed: BTreeMap<u32, usize> = BTreeMap::new();
    let mut remaining: Vec<usize> = order;
    let mut track = 0usize;
    while !remaining.is_empty() {
        if track >= max_tracks {
            return Err(RouteError::BudgetExhausted { tracks: track });
        }
        let mut last_end: Option<usize> = None;
        let mut next_round: Vec<usize> = Vec::new();
        for &i in &remaining {
            let (key, x0, x1) = items[i];
            let fits = last_end.is_none_or(|e| x0 > e);
            let ancestors_ok =
                vcg.above(key).iter().all(|a| placed.get(a).is_some_and(|&t| t < track));
            if fits && ancestors_ok {
                placed.insert(key, track);
                last_end = Some(x1);
            } else {
                next_round.push(i);
            }
        }
        remaining = next_round;
        track += 1;
    }
    Ok(placed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use route_verify::verify;

    #[test]
    fn routes_simple_channel_at_density() {
        let spec = ChannelSpec::new(vec![1, 0, 2, 0], vec![0, 1, 0, 2]).unwrap();
        let sol = route(&spec).unwrap();
        assert_eq!(sol.tracks as u32, spec.density());
        let (problem, db) = sol.layout.realize(&spec).unwrap();
        let report = verify(&problem, &db);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn vertical_constraints_order_tracks() {
        // Column 0 forces 1 above 2.
        let spec = ChannelSpec::new(vec![1, 1, 0], vec![2, 0, 2]).unwrap();
        let sol = route(&spec).unwrap();
        assert!(sol.track_of[&1] < sol.track_of[&2]);
        let (problem, db) = sol.layout.realize(&spec).unwrap();
        assert!(verify(&problem, &db).is_clean());
    }

    #[test]
    fn cycle_is_reported() {
        let spec = ChannelSpec::new(vec![1, 2], vec![2, 1]).unwrap();
        assert!(matches!(route(&spec), Err(RouteError::VerticalCycle { .. })));
    }

    #[test]
    fn non_overlapping_nets_share_track() {
        let spec = ChannelSpec::new(vec![1, 0, 0, 2], vec![0, 1, 2, 0]).unwrap();
        let sol = route(&spec).unwrap();
        // Net 1 spans [0,1], net 2 spans [2,3]: same track works.
        assert_eq!(sol.tracks, 1);
        assert_eq!(sol.track_of[&1], sol.track_of[&2]);
    }

    #[test]
    fn chain_of_constraints_exceeds_density() {
        // VCG chain 1 -> 2 -> 3 but density is small: LEA pays tracks for
        // the chain, the classic left-edge weakness.
        let spec = ChannelSpec::new(vec![1, 2, 3, 0, 0, 0], vec![2, 3, 0, 1, 2, 3]).unwrap();
        let sol = route(&spec).unwrap();
        assert!(sol.tracks >= 3, "chain forces three tracks, got {}", sol.tracks);
        let (problem, db) = sol.layout.realize(&spec).unwrap();
        let report = verify(&problem, &db);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn realized_solution_verifies_on_larger_example() {
        let spec = ChannelSpec::new(
            vec![1, 0, 2, 3, 0, 4, 0, 5, 0, 2],
            vec![0, 1, 0, 2, 3, 0, 4, 0, 5, 0],
        )
        .unwrap();
        let sol = route(&spec).unwrap();
        let (problem, db) = sol.layout.realize(&spec).unwrap();
        let report = verify(&problem, &db);
        assert!(report.is_clean(), "{report}");
        assert!(sol.tracks as u32 >= spec.density());
    }
}
