//! A YACR-II-style channel router: track assignment plus maze patch-up.
//!
//! YACR-II (Reed, Sangiovanni-Vincentelli, Santomauro 1985) assigns each
//! net a horizontal track while *ignoring* most vertical constraints,
//! then repairs the resulting vertical conflicts with increasingly
//! powerful maze routines. This implementation follows that architecture
//! with the workspace's shared grid substrate:
//!
//! 1. nets are packed into `tracks` tracks by the left-edge rule,
//!    choosing among free tracks the one closest to each net's vertical
//!    "pull" (where its pins predominantly are);
//! 2. the track spines are committed to a grid and every pin is attached
//!    with the weighted A* of [`route_maze`], which doglegs around
//!    vertical conflicts using whatever space exists;
//! 3. if some pin cannot be attached, the track count is increased and
//!    the process repeats.
//!
//! The result is always verified geometry; track counts land at density
//! or slightly above, matching the published router's behaviour.

use std::collections::BTreeMap;

use route_geom::{Layer, Point};
use route_maze::sequential::connect_net_seeded;
use route_maze::CostModel;
use route_model::{Problem, RouteDb, Step, Trace};

use crate::{ChannelSpec, RouteError};

/// A YACR-style solution: the realized grid routing itself.
#[derive(Debug, Clone)]
pub struct YacrSolution {
    /// Number of tracks used.
    pub tracks: usize,
    /// Track index (0 = top) per net number.
    pub track_of: BTreeMap<u32, usize>,
    /// The grid problem the channel was realized as.
    pub problem: Problem,
    /// The committed routing.
    pub db: RouteDb,
}

/// Routes `spec`, growing the track count from the density lower bound
/// until the maze patch-up completes, up to `density + max_extra` tracks.
///
/// # Errors
///
/// Returns [`RouteError::BudgetExhausted`] if no track count within the
/// budget routes the channel.
pub fn route(spec: &ChannelSpec, max_extra: u32) -> Result<YacrSolution, RouteError> {
    let density = spec.density().max(1);
    for extra in 0..=max_extra {
        let tracks = (density + extra) as usize;
        if let Some(solution) = attempt(spec, tracks) {
            return Ok(solution);
        }
    }
    Err(RouteError::BudgetExhausted { tracks: (density + max_extra) as usize })
}

/// One attempt at a fixed track count.
fn attempt(spec: &ChannelSpec, tracks: usize) -> Option<YacrSolution> {
    let track_of = assign_tracks(spec, tracks)?;
    let track_row = |t: usize| -> i32 { (tracks - t) as i32 };
    let ids = spec.net_ids();
    let problem = spec.to_problem(tracks);
    let mut db = RouteDb::new(&problem);

    // Commit the track spines.
    for &net in &ids {
        let (x0, x1) = spec.span(net).expect("net from spec");
        let y = track_row(track_of[&net]);
        let steps: Vec<Step> =
            (x0..=x1).map(|x| Step::new(Point::new(x as i32, y), Layer::M1)).collect();
        let nid = problem.net_by_name(&net.to_string()).expect("net exists").id;
        db.commit(nid, Trace::from_steps(steps).expect("row contiguous")).ok()?;
    }

    // Attach every pin to its net's spine with the maze, sweeping the
    // pins in column order (YACR's column discipline). Wrong-way moves
    // are priced high so vertical wiring stays in its own column: a
    // cheap horizontal jog on M2 tends to wall in a neighbouring
    // column's pins.
    let strict = CostModel { step: 1, via: 2, wrong_way: 4, bend: 0 };
    let relaxed = CostModel::default();
    for &net in &ids {
        let nid = problem.net_by_name(&net.to_string()).expect("net exists").id;
        let spine_y = track_row(track_of[&net]);
        let (x0, x1) = spec.span(net).expect("net from spec");
        let seed: Vec<Step> =
            (x0..=x1).map(|x| Step::new(Point::new(x as i32, spine_y), Layer::M1)).collect();
        if connect_net_seeded(&mut db, nid, strict, seed.clone()).is_err() {
            // Second chance with the relaxed cost model: the remaining
            // pins may need a wrong-way wander the strict discipline
            // would never take (YACR's maze2/maze3 escalation).
            connect_net_seeded(&mut db, nid, relaxed, seed).ok()?;
        }
    }
    Some(YacrSolution { tracks, track_of, problem, db })
}

/// Left-edge packing into exactly `tracks` tracks. Tracks are chosen to
/// minimise **vertical constraint violations** first (the heart of
/// YACR's assignment phase) and distance to the net's pull second.
fn assign_tracks(spec: &ChannelSpec, tracks: usize) -> Option<BTreeMap<u32, usize>> {
    let mut items: Vec<(u32, usize, usize)> = spec
        .net_ids()
        .into_iter()
        .map(|n| {
            let (l, r) = spec.span(n).expect("net from spec");
            (n, l, r)
        })
        .collect();
    items.sort_by_key(|&(n, l, r)| (l, r, n));

    // Rightmost occupied column per track.
    let mut last_end: Vec<Option<usize>> = vec![None; tracks];
    let mut assignment: BTreeMap<u32, usize> = BTreeMap::new();
    for &(net, x0, x1) in &items {
        // Violations a candidate track would create against the nets
        // already assigned: in every column, the top pin's net must sit
        // strictly above the bottom pin's net.
        let violations = |t: usize| -> usize {
            let mut count = 0;
            for c in 0..spec.width() {
                let (top, bottom) = (spec.top(c), spec.bottom(c));
                if top == net && bottom != 0 && bottom != net {
                    if let Some(&bt) = assignment.get(&bottom) {
                        // Track 0 is the topmost row.
                        if t >= bt {
                            count += 1;
                        }
                    }
                }
                if bottom == net && top != 0 && top != net {
                    if let Some(&tt) = assignment.get(&top) {
                        if tt >= t {
                            count += 1;
                        }
                    }
                }
            }
            count
        };
        // Pull: fraction of top pins decides the preferred track index.
        let cols = spec.pin_columns(net);
        let top_pins = cols.iter().filter(|&&c| spec.top(c) == net).count();
        let bottom_pins = cols.iter().filter(|&&c| spec.bottom(c) == net).count();
        let prefer: f64 = if top_pins + bottom_pins == 0 {
            (tracks as f64 - 1.0) / 2.0
        } else {
            (bottom_pins as f64 / (top_pins + bottom_pins) as f64) * (tracks as f64 - 1.0)
        };
        let candidate =
            (0..tracks).filter(|&t| last_end[t].is_none_or(|e| x0 > e)).min_by(|&a, &b| {
                let va = violations(a);
                let vb = violations(b);
                let da = (a as f64 - prefer).abs();
                let dbv = (b as f64 - prefer).abs();
                va.cmp(&vb).then(da.partial_cmp(&dbv).expect("finite distances"))
            })?;
        last_end[candidate] = Some(x1);
        assignment.insert(net, candidate);
    }
    Some(assignment)
}

#[cfg(test)]
mod tests {
    use super::*;
    use route_verify::verify;

    fn check(spec: &ChannelSpec, max_extra: u32) -> YacrSolution {
        let sol = route(spec, max_extra).expect("yacr completes");
        let report = verify(&sol.problem, &sol.db);
        assert!(report.is_clean(), "verification failed:\n{report}");
        sol
    }

    #[test]
    fn routes_simple_channel_at_density() {
        let spec = ChannelSpec::new(vec![1, 0, 2, 0], vec![0, 1, 0, 2]).unwrap();
        let sol = check(&spec, 3);
        assert_eq!(sol.tracks as u32, spec.density());
    }

    #[test]
    fn routes_cyclic_channel_with_doglegs() {
        // The 2-net cycle that defeats LEA and dogleg: YACR's maze
        // patch-up routes it with at most one extra track.
        let spec = ChannelSpec::new(vec![1, 2, 0], vec![2, 1, 0]).unwrap();
        let sol = check(&spec, 4);
        assert!(sol.tracks as u32 <= spec.density() + 2);
    }

    #[test]
    fn routes_multi_pin_channel() {
        let spec =
            ChannelSpec::new(vec![1, 2, 1, 0, 2, 3, 0, 3], vec![0, 1, 2, 1, 3, 0, 2, 0]).unwrap();
        let sol = check(&spec, 4);
        assert!(sol.tracks as u32 >= spec.density());
    }

    #[test]
    fn budget_exhaustion_reported() {
        // An impossible budget: zero extra tracks for a cyclic channel
        // that needs detour space.
        let spec = ChannelSpec::new(vec![1, 2], vec![2, 1]).unwrap();
        let result = route(&spec, 0);
        // Either it routes at density (fine) or reports exhaustion;
        // it must not panic or produce illegal geometry.
        if let Ok(sol) = result {
            assert!(verify(&sol.problem, &sol.db).is_clean());
        }
    }

    #[test]
    fn track_assignment_respects_capacity() {
        let spec = ChannelSpec::new(vec![1, 2, 0], vec![0, 1, 2]).unwrap();
        // Density 2; packing into 1 track must fail.
        assert!(assign_tracks(&spec, 1).is_none());
        assert!(assign_tracks(&spec, 2).is_some());
    }
}
