//! A greedy channel router in the style of Rivest–Fiduccia (DAC 1982).
//!
//! The router sweeps the channel column by column, maintaining the set of
//! tracks and which net each track currently carries. In every column it
//! (1) brings the column's pins onto tracks with minimal vertical wiring,
//! (2) collapses nets that occupy several tracks whenever free vertical
//! space allows, and (3) widens the channel by inserting a fresh track
//! when a pin cannot otherwise enter. Nets still split when the sweep
//! reaches the right edge are finished on extension columns beyond the
//! channel — the router's signature behaviour ("transcending the end").
//!
//! Unlike the left-edge family this router never fails on vertical
//! constraint cycles; it trades extra tracks and extra columns instead.

use std::collections::BTreeMap;

use crate::{ChannelLayout, ChannelSpec, HSeg, RouteError, VEnd, VSeg};

/// Stable identity of a track across insertions.
type TrackId = usize;

/// Endpoint of a vertical run in sweep state (track ids, not rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum End {
    Top,
    Bottom,
    Track(TrackId),
}

/// Tuning knobs of the greedy sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GreedyConfig {
    /// Hard cap on the number of tracks before giving up.
    pub max_tracks: usize,
    /// Hard cap on extension columns beyond the channel's right edge.
    pub max_extension: usize,
}

impl Default for GreedyConfig {
    fn default() -> Self {
        GreedyConfig { max_tracks: 256, max_extension: 64 }
    }
}

/// A greedy solution: final track count, extension columns and layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GreedySolution {
    /// Number of tracks used.
    pub tracks: usize,
    /// Columns used beyond the channel's right edge.
    pub extra_columns: usize,
    /// The realizable geometry.
    pub layout: ChannelLayout,
}

struct Sweep<'a> {
    spec: &'a ChannelSpec,
    cfg: GreedyConfig,
    /// Track ids, top to bottom.
    order: Vec<TrackId>,
    next_id: TrackId,
    /// Net carried by each track (id-keyed), if any.
    carrier: BTreeMap<TrackId, u32>,
    /// Column where each live track's horizontal run started.
    run_start: BTreeMap<TrackId, usize>,
    /// Rightmost pin column per net.
    last_col: BTreeMap<u32, usize>,
    /// Vertical runs of the current column: (net, hi, lo) closed
    /// intervals in order-space, used for conflict checks.
    column_runs: Vec<(u32, End, End)>,
    /// Output geometry (track-id space; converted at the end).
    hsegs: Vec<(u32, TrackId, usize, usize)>,
    vsegs: Vec<(u32, usize, End, End)>,
}

impl<'a> Sweep<'a> {
    fn new(spec: &'a ChannelSpec, cfg: GreedyConfig) -> Self {
        let initial = spec.density().max(1) as usize;
        let order: Vec<TrackId> = (0..initial).collect();
        let last_col = spec
            .net_ids()
            .into_iter()
            .map(|n| (n, spec.span(n).expect("net from spec").1))
            .collect();
        Sweep {
            spec,
            cfg,
            order,
            next_id: initial,
            carrier: BTreeMap::new(),
            run_start: BTreeMap::new(),
            last_col,
            column_runs: Vec::new(),
            hsegs: Vec::new(),
            vsegs: Vec::new(),
        }
    }

    /// Order-space position: Top < tracks < Bottom.
    fn pos(&self, e: End) -> i64 {
        match e {
            End::Top => -1,
            End::Bottom => self.order.len() as i64,
            End::Track(id) => {
                self.order.iter().position(|&t| t == id).expect("live track id") as i64
            }
        }
    }

    fn tracks_of(&self, net: u32) -> Vec<TrackId> {
        let mut ids: Vec<TrackId> =
            self.carrier.iter().filter(|(_, &n)| n == net).map(|(&id, _)| id).collect();
        ids.sort_by_key(|&id| self.pos(End::Track(id)));
        ids
    }

    /// Whether the closed interval `[hi, lo]` is free of other nets' runs
    /// in the current column.
    fn run_clear(&self, net: u32, hi: End, lo: End) -> bool {
        let (a0, a1) = (self.pos(hi), self.pos(lo));
        debug_assert!(a0 <= a1);
        self.column_runs.iter().all(|&(n, h, l)| {
            if n == net {
                return true;
            }
            let (b0, b1) = (self.pos(h), self.pos(l));
            a1 < b0 || b1 < a0
        })
    }

    /// Records a vertical run at column `col`, splitting it at every
    /// intermediate track of `net` so the realization inserts vias there.
    fn emit_run(&mut self, net: u32, col: usize, hi: End, lo: End) {
        self.column_runs.push((net, hi, lo));
        let (p0, p1) = (self.pos(hi), self.pos(lo));
        let mut cuts: Vec<(i64, End)> = vec![(p0, hi), (p1, lo)];
        for id in self.tracks_of(net) {
            let p = self.pos(End::Track(id));
            if p > p0 && p < p1 {
                cuts.push((p, End::Track(id)));
            }
        }
        cuts.sort_by_key(|&(p, _)| p);
        cuts.dedup_by_key(|&mut (p, _)| p);
        for w in cuts.windows(2) {
            self.vsegs.push((net, col, w[0].1, w[1].1));
        }
    }

    /// Claims `track` for `net` starting a horizontal run at `col`.
    fn claim(&mut self, track: TrackId, net: u32, col: usize) {
        self.carrier.insert(track, net);
        self.run_start.insert(track, col);
    }

    /// Frees `track` at `col`, recording its horizontal segment.
    fn free(&mut self, track: TrackId, col: usize) {
        if let Some(net) = self.carrier.remove(&track) {
            let start = self.run_start.remove(&track).expect("live run");
            self.hsegs.push((net, track, start, col));
        }
    }

    /// Inserts a fresh empty track at order position `at` (0 = very top).
    fn insert_track(&mut self, at: usize) -> Result<TrackId, RouteError> {
        if self.order.len() >= self.cfg.max_tracks {
            return Err(RouteError::BudgetExhausted { tracks: self.order.len() });
        }
        let id = self.next_id;
        self.next_id += 1;
        self.order.insert(at.min(self.order.len()), id);
        Ok(id)
    }

    /// Finds an empty track between order positions `(lo_excl, hi_excl)`,
    /// preferring the one closest to `prefer`.
    fn empty_track_between(&self, lo_excl: i64, hi_excl: i64, prefer: i64) -> Option<TrackId> {
        self.order
            .iter()
            .enumerate()
            .filter(|&(i, id)| {
                let p = i as i64;
                p > lo_excl && p < hi_excl && !self.carrier.contains_key(id)
            })
            .min_by_key(|&(i, _)| (i as i64 - prefer).abs())
            .map(|(_, &id)| id)
    }

    /// Connects the top pin of `net` at `col`: to its topmost track, or to
    /// an empty track, or to a freshly inserted one. `floor` is the
    /// order-space position the run must stay strictly above.
    fn connect_top(&mut self, net: u32, col: usize, floor: i64) -> Result<(), RouteError> {
        let target = self
            .tracks_of(net)
            .into_iter()
            .map(|id| (self.pos(End::Track(id)), id))
            .find(|&(p, _)| p < floor)
            .map(|(_, id)| id);
        let target = match target {
            Some(id) => id,
            None => match self.empty_track_between(-1, floor, 0) {
                Some(id) => {
                    self.claim(id, net, col);
                    id
                }
                None => {
                    let id = self.insert_track(0)?;
                    self.claim(id, net, col);
                    id
                }
            },
        };
        if !self.run_clear(net, End::Top, End::Track(target)) {
            // Fall back to a brand-new track at the very top; the net
            // becomes split and will collapse later.
            let id = self.insert_track(0)?;
            self.claim(id, net, col);
            self.emit_run(net, col, End::Top, End::Track(id));
            return Ok(());
        }
        self.emit_run(net, col, End::Top, End::Track(target));
        Ok(())
    }

    /// Mirror image of [`connect_top`] for bottom pins. `ceil` is the
    /// position the run must stay strictly below.
    fn connect_bottom(&mut self, net: u32, col: usize, ceil: i64) -> Result<(), RouteError> {
        let target = self
            .tracks_of(net)
            .into_iter()
            .rev()
            .map(|id| (self.pos(End::Track(id)), id))
            .find(|&(p, _)| p > ceil)
            .map(|(_, id)| id);
        let target = match target {
            Some(id) => id,
            None => {
                let bottom = self.order.len() as i64;
                match self.empty_track_between(ceil, bottom, bottom - 1) {
                    Some(id) => {
                        self.claim(id, net, col);
                        id
                    }
                    None => {
                        let at = self.order.len();
                        let id = self.insert_track(at)?;
                        self.claim(id, net, col);
                        id
                    }
                }
            }
        };
        if !self.run_clear(net, End::Track(target), End::Bottom) {
            let at = self.order.len();
            let id = self.insert_track(at)?;
            self.claim(id, net, col);
            self.emit_run(net, col, End::Track(id), End::Bottom);
            return Ok(());
        }
        self.emit_run(net, col, End::Track(target), End::Bottom);
        Ok(())
    }

    /// Both pins of the column belong to `net`: run the full column,
    /// connecting (and collapsing) every track of the net on the way.
    fn connect_through(&mut self, net: u32, col: usize) -> Result<(), RouteError> {
        if !self.run_clear(net, End::Top, End::Bottom) {
            // Cannot happen: through-runs are processed first in a column.
            return Err(RouteError::BudgetExhausted { tracks: self.order.len() });
        }
        let mut mine = self.tracks_of(net);
        if mine.is_empty() {
            let id = match self.empty_track_between(-1, self.order.len() as i64, 0) {
                Some(id) => {
                    self.claim(id, net, col);
                    id
                }
                None => {
                    let id = self.insert_track(0)?;
                    self.claim(id, net, col);
                    id
                }
            };
            mine = vec![id];
        }
        self.emit_run(net, col, End::Top, End::Bottom);
        // The full run connects every track of the net: keep the first,
        // free the rest here.
        for id in mine.into_iter().skip(1) {
            self.free(id, col);
        }
        Ok(())
    }

    /// One collapse attempt per net: join two adjacent-owned tracks if
    /// the vertical space between them is clear, freeing the lower one.
    fn collapse(&mut self, col: usize) {
        let nets: Vec<u32> = {
            let mut seen: Vec<u32> = self.carrier.values().copied().collect();
            seen.sort_unstable();
            seen.dedup();
            seen
        };
        for net in nets {
            let mine = self.tracks_of(net);
            if mine.len() < 2 {
                continue;
            }
            for w in mine.windows(2) {
                let (hi, lo) = (End::Track(w[0]), End::Track(w[1]));
                if self.run_clear(net, hi, lo) {
                    self.emit_run(net, col, hi, lo);
                    self.free(w[1], col);
                    break;
                }
            }
        }
    }

    /// Frees tracks of nets whose pins are all behind the sweep and which
    /// occupy a single track.
    fn retire(&mut self, col: usize) {
        let done: Vec<TrackId> = self
            .carrier
            .iter()
            .filter(|(_, &net)| self.last_col[&net] <= col)
            .map(|(&id, _)| id)
            .filter(|&id| {
                let net = self.carrier[&id];
                self.tracks_of(net).len() == 1
            })
            .collect();
        for id in done {
            self.free(id, col);
        }
    }

    fn run(mut self) -> Result<GreedySolution, RouteError> {
        let width = self.spec.width();
        let mut col = 0usize;
        loop {
            self.column_runs.clear();
            let (t, b) =
                if col < width { (self.spec.top(col), self.spec.bottom(col)) } else { (0, 0) };
            if t != 0 && t == b {
                self.connect_through(t, col)?;
            } else {
                // Bring in the bottom pin first so the top connection
                // knows the floor it must respect, then the top pin with
                // the bottom run as its floor.
                if b != 0 {
                    let ceil = -1; // stays below nothing initially
                    self.connect_bottom(b, col, ceil)?;
                }
                if t != 0 {
                    let floor = self
                        .column_runs
                        .iter()
                        .filter(|&&(n, _, _)| n != t)
                        .map(|&(_, h, _)| self.pos(h))
                        .min()
                        .unwrap_or(self.order.len() as i64);
                    self.connect_top(t, col, floor)?;
                }
            }
            self.collapse(col);
            self.retire(col);

            let split_remains = {
                let mut counts: BTreeMap<u32, usize> = BTreeMap::new();
                for &net in self.carrier.values() {
                    *counts.entry(net).or_insert(0) += 1;
                }
                counts.values().any(|&c| c > 1)
            };
            col += 1;
            if col >= width {
                if !split_remains {
                    break;
                }
                if col >= width + self.cfg.max_extension {
                    return Err(RouteError::BudgetExhausted { tracks: self.order.len() });
                }
            }
        }
        // Any still-live single tracks: nets fully wired, retire at the
        // final column.
        let live: Vec<TrackId> = self.carrier.keys().copied().collect();
        let final_col = col - 1;
        for id in live {
            self.free(id, final_col);
        }

        // Convert track ids to final indices.
        let index_of: BTreeMap<TrackId, usize> =
            self.order.iter().enumerate().map(|(i, &id)| (id, i)).collect();
        let tracks = self.order.len();
        let convert = |e: End| -> VEnd {
            match e {
                End::Top => VEnd::Top,
                End::Bottom => VEnd::Bottom,
                End::Track(id) => VEnd::Track(index_of[&id]),
            }
        };
        let layout = ChannelLayout {
            tracks,
            hsegs: self
                .hsegs
                .iter()
                .map(|&(net, id, x0, x1)| HSeg { net, track: index_of[&id], x0, x1 })
                .collect(),
            vsegs: self
                .vsegs
                .iter()
                .map(|&(net, col, a, b)| VSeg { net, col, a: convert(a), b: convert(b) })
                .collect(),
            extra_columns: final_col.saturating_sub(width - 1),
        };
        Ok(GreedySolution { tracks, extra_columns: layout.extra_columns, layout })
    }
}

/// Routes `spec` with the greedy column sweep under default limits.
///
/// # Errors
///
/// Returns [`RouteError::BudgetExhausted`] if the track or extension
/// budget is exceeded (pathological inputs only).
pub fn route(spec: &ChannelSpec) -> Result<GreedySolution, RouteError> {
    route_with(spec, GreedyConfig::default())
}

/// Routes `spec` with explicit budgets.
///
/// # Errors
///
/// Returns [`RouteError::BudgetExhausted`] when a budget is exceeded.
pub fn route_with(spec: &ChannelSpec, cfg: GreedyConfig) -> Result<GreedySolution, RouteError> {
    Sweep::new(spec, cfg).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use route_verify::verify;

    fn check(spec: &ChannelSpec) -> GreedySolution {
        let sol = route(spec).expect("greedy completes");
        let (problem, db) = sol.layout.realize(spec).expect("realizable");
        let report = verify(&problem, &db);
        assert!(report.is_clean(), "verification failed:\n{report}");
        sol
    }

    #[test]
    fn routes_simple_channel() {
        let spec = ChannelSpec::new(vec![1, 0, 2, 0], vec![0, 1, 0, 2]).unwrap();
        let sol = check(&spec);
        assert!(sol.tracks as u32 >= spec.density());
    }

    #[test]
    fn routes_cyclic_channel_lea_cannot() {
        let spec = ChannelSpec::new(vec![1, 2], vec![2, 1]).unwrap();
        assert!(crate::lea::route(&spec).is_err());
        let sol = check(&spec);
        // The cycle costs extra space: extension columns or extra tracks.
        assert!(sol.tracks >= 2);
    }

    #[test]
    fn through_pins_connect_everything() {
        // Net 1 has top and bottom pins in the same column twice.
        let spec = ChannelSpec::new(vec![1, 2, 1], vec![1, 2, 1]).unwrap();
        check(&spec);
    }

    #[test]
    fn multi_pin_nets_collapse() {
        let spec = ChannelSpec::new(vec![1, 0, 1, 2, 0, 2], vec![0, 1, 0, 0, 2, 0]).unwrap();
        check(&spec);
    }

    #[test]
    fn dense_channel_stays_near_density() {
        let spec = ChannelSpec::new(
            vec![1, 2, 3, 4, 5, 0, 0, 0, 0, 0],
            vec![0, 0, 0, 0, 0, 1, 2, 3, 4, 5],
        )
        .unwrap();
        let sol = check(&spec);
        assert!(
            sol.tracks as u32 <= spec.density() + 2,
            "tracks {} vs density {}",
            sol.tracks,
            spec.density()
        );
    }

    #[test]
    fn budget_exhaustion_reported() {
        let spec = ChannelSpec::new(vec![1, 2], vec![2, 1]).unwrap();
        let cfg = GreedyConfig { max_tracks: 1, max_extension: 0 };
        assert!(matches!(route_with(&spec, cfg), Err(RouteError::BudgetExhausted { .. })));
    }
}
