use std::error::Error;
use std::fmt;

use route_geom::{Layer, Point};
use route_model::{
    PinSide, Problem, ProblemBuilder, ProblemError, RouteDb, Step, Trace, TraceError,
};

use crate::ChannelSpec;

/// A horizontal track segment of a channel solution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HSeg {
    /// Net number (1-based, as in the spec).
    pub net: u32,
    /// Track index, `0` = topmost track.
    pub track: usize,
    /// First column covered.
    pub x0: usize,
    /// Last column covered (inclusive; may equal `x0`).
    pub x1: usize,
}

/// Endpoint of a vertical segment in track space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VEnd {
    /// The top pin row.
    Top,
    /// The bottom pin row.
    Bottom,
    /// A track row (index `0` = topmost track).
    Track(usize),
}

/// A vertical column segment of a channel solution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VSeg {
    /// Net number (1-based, as in the spec).
    pub net: u32,
    /// Column of the segment.
    pub col: usize,
    /// One endpoint.
    pub a: VEnd,
    /// The other endpoint.
    pub b: VEnd,
}

/// Error produced when a [`ChannelLayout`] cannot be realized on the grid.
#[derive(Debug)]
pub enum RealizeError {
    /// The layout references a track or column outside its own bounds.
    OutOfRange(String),
    /// The problem construction failed (duplicate pins etc.).
    Problem(ProblemError),
    /// Committing a segment conflicted with earlier wiring — the layout
    /// contains a short.
    Conflict(TraceError),
}

impl fmt::Display for RealizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RealizeError::OutOfRange(what) => write!(f, "layout out of range: {what}"),
            RealizeError::Problem(e) => write!(f, "problem construction failed: {e}"),
            RealizeError::Conflict(e) => write!(f, "layout contains a conflict: {e}"),
        }
    }
}

impl Error for RealizeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RealizeError::OutOfRange(_) => None,
            RealizeError::Problem(e) => Some(e),
            RealizeError::Conflict(e) => Some(e),
        }
    }
}

impl From<ProblemError> for RealizeError {
    fn from(e: ProblemError) -> Self {
        RealizeError::Problem(e)
    }
}

impl From<TraceError> for RealizeError {
    fn from(e: TraceError) -> Self {
        RealizeError::Conflict(e)
    }
}

/// An abstract channel solution: horizontal track segments on M1 and
/// vertical column segments on M2, in track coordinates.
///
/// Produced by the channel routers; turned into a checked grid routing by
/// [`ChannelLayout::realize`]. `extra_columns` records by how many columns
/// a router (the greedy router) overshot the channel on the right.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ChannelLayout {
    /// Number of tracks used.
    pub tracks: usize,
    /// Horizontal segments.
    pub hsegs: Vec<HSeg>,
    /// Vertical segments.
    pub vsegs: Vec<VSeg>,
    /// Columns used beyond the channel's right edge.
    pub extra_columns: usize,
}

impl ChannelLayout {
    /// Converts the channel spec plus this layout into a grid [`Problem`]
    /// and a fully committed [`RouteDb`], ready for verification.
    ///
    /// The grid is `(width + extra_columns) x (tracks + 2)`: row `0` is
    /// the bottom pin row, the top row the top pin row, and the rows in
    /// between the tracks (track `0` on top). Pins sit on the vertical
    /// layer M2. Vias are inserted at every vertical-segment endpoint that
    /// lands on a track.
    ///
    /// # Errors
    ///
    /// Returns [`RealizeError`] if the layout references columns or
    /// tracks out of range, or if its segments overlap illegally (which
    /// would mean the router produced a short).
    pub fn realize(&self, spec: &ChannelSpec) -> Result<(Problem, RouteDb), RealizeError> {
        let width = spec.width() + self.extra_columns;
        let height = self.tracks + 2;
        let track_row = |t: usize| -> i32 { (self.tracks - t) as i32 };
        let row_of = |end: VEnd| -> i32 {
            match end {
                VEnd::Top => height as i32 - 1,
                VEnd::Bottom => 0,
                VEnd::Track(t) => track_row(t),
            }
        };

        for h in &self.hsegs {
            if h.track >= self.tracks || h.x1 >= width || h.x0 > h.x1 {
                return Err(RealizeError::OutOfRange(format!("{h:?}")));
            }
        }
        for v in &self.vsegs {
            let bad_track = |e: VEnd| matches!(e, VEnd::Track(t) if t >= self.tracks);
            if v.col >= width || bad_track(v.a) || bad_track(v.b) {
                return Err(RealizeError::OutOfRange(format!("{v:?}")));
            }
        }

        // Build the problem: pins from the spec.
        let mut builder = ProblemBuilder::switchbox(width as u32, height as u32);
        let ids = spec.net_ids();
        for &net in &ids {
            let mut nb = builder.net(format!("{net}"));
            for c in 0..spec.width() {
                if spec.top(c) == net {
                    nb.pin_side(PinSide::Top, c as u32);
                }
                if spec.bottom(c) == net {
                    nb.pin_side(PinSide::Bottom, c as u32);
                }
            }
        }
        let problem = builder.build()?;
        let net_id = |net: u32| {
            problem.net_by_name(&net.to_string()).expect("layout nets come from the spec").id
        };

        let mut db = RouteDb::new(&problem);
        for h in &self.hsegs {
            let y = track_row(h.track);
            let steps: Vec<Step> =
                (h.x0..=h.x1).map(|x| Step::new(Point::new(x as i32, y), Layer::M1)).collect();
            db.commit(net_id(h.net), Trace::from_steps(steps).expect("row is contiguous"))?;
        }
        for v in &self.vsegs {
            let (mut y0, mut y1) = (row_of(v.a), row_of(v.b));
            if y0 > y1 {
                std::mem::swap(&mut y0, &mut y1);
            }
            let steps: Vec<Step> =
                (y0..=y1).map(|y| Step::new(Point::new(v.col as i32, y), Layer::M2)).collect();
            db.commit(net_id(v.net), Trace::from_steps(steps).expect("column is contiguous"))?;
            // Vias at track endpoints.
            for end in [v.a, v.b] {
                if let VEnd::Track(t) = end {
                    let p = Point::new(v.col as i32, track_row(t));
                    let via =
                        Trace::from_steps(vec![Step::new(p, Layer::M2), Step::new(p, Layer::M1)])
                            .expect("via is contiguous");
                    db.commit(net_id(v.net), via)?;
                }
            }
        }
        Ok((problem, db))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use route_verify::verify;

    #[test]
    fn realize_trivial_channel() {
        // One net: top pin col 0, bottom pin col 2.
        let spec = ChannelSpec::new(vec![1, 0, 0], vec![0, 0, 1]).unwrap();
        let layout = ChannelLayout {
            tracks: 1,
            hsegs: vec![HSeg { net: 1, track: 0, x0: 0, x1: 2 }],
            vsegs: vec![
                VSeg { net: 1, col: 0, a: VEnd::Top, b: VEnd::Track(0) },
                VSeg { net: 1, col: 2, a: VEnd::Bottom, b: VEnd::Track(0) },
            ],
            extra_columns: 0,
        };
        let (problem, db) = layout.realize(&spec).unwrap();
        let report = verify(&problem, &db);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn realize_two_tracks() {
        // Column 1 has net 2 on top and net 1 on the bottom, so net 2's
        // track must lie above net 1's.
        let spec = ChannelSpec::new(vec![1, 2, 0], vec![0, 1, 2]).unwrap();
        let layout = ChannelLayout {
            tracks: 2,
            hsegs: vec![
                HSeg { net: 1, track: 1, x0: 0, x1: 1 },
                HSeg { net: 2, track: 0, x0: 1, x1: 2 },
            ],
            vsegs: vec![
                VSeg { net: 1, col: 0, a: VEnd::Top, b: VEnd::Track(1) },
                VSeg { net: 1, col: 1, a: VEnd::Bottom, b: VEnd::Track(1) },
                VSeg { net: 2, col: 1, a: VEnd::Top, b: VEnd::Track(0) },
                VSeg { net: 2, col: 2, a: VEnd::Bottom, b: VEnd::Track(0) },
            ],
            extra_columns: 0,
        };
        let (problem, db) = layout.realize(&spec).unwrap();
        let report = verify(&problem, &db);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn out_of_range_rejected() {
        let spec = ChannelSpec::new(vec![1, 0], vec![0, 1]).unwrap();
        let layout = ChannelLayout {
            tracks: 1,
            hsegs: vec![HSeg { net: 1, track: 3, x0: 0, x1: 1 }],
            vsegs: vec![],
            extra_columns: 0,
        };
        assert!(matches!(layout.realize(&spec), Err(RealizeError::OutOfRange(_))));
    }

    #[test]
    fn shorted_layout_rejected() {
        let spec = ChannelSpec::new(vec![1, 2], vec![1, 2]).unwrap();
        // Both nets claim track 0 over overlapping columns.
        let layout = ChannelLayout {
            tracks: 1,
            hsegs: vec![
                HSeg { net: 1, track: 0, x0: 0, x1: 1 },
                HSeg { net: 2, track: 0, x0: 1, x1: 1 },
            ],
            vsegs: vec![],
            extra_columns: 0,
        };
        assert!(matches!(layout.realize(&spec), Err(RealizeError::Conflict(_))));
    }

    #[test]
    fn vertical_overlap_is_a_conflict() {
        // Nets 1 and 2 both run the full column 0 on M2.
        let spec = ChannelSpec::new(vec![1, 1, 2], vec![2, 1, 2]).unwrap();
        let layout = ChannelLayout {
            tracks: 2,
            hsegs: vec![],
            vsegs: vec![
                VSeg { net: 1, col: 0, a: VEnd::Top, b: VEnd::Bottom },
                VSeg { net: 2, col: 0, a: VEnd::Top, b: VEnd::Bottom },
            ],
            extra_columns: 0,
        };
        assert!(matches!(layout.realize(&spec), Err(RealizeError::Conflict(_))));
    }
}
