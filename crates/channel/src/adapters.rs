//! [`DetailedRouter`] adapters for the channel and switchbox baselines.
//!
//! The channel routers natively speak [`ChannelSpec`]; these adapters
//! recover the spec from a channel-shaped grid [`Problem`]
//! ([`ChannelSpec::from_problem`]), run the underlying algorithm, and
//! *transplant* the realized wiring back onto the caller's grid so the
//! returned database belongs to the caller's problem — the contract
//! every [`DetailedRouter`] shares.
//!
//! A channel router is free to use fewer tracks than the problem offers;
//! the transplant stretches vertical runs that reach the top pin row
//! across the unused rows. A router that needs *more* tracks than the
//! problem has (or, for the greedy router, more columns) fails with
//! [`RouteError::BudgetExhausted`] / [`RouteError::Unroutable`] instead.

use route_geom::Point;
use route_model::{
    DetailedRouter, NetId, Problem, RouteDb, RouteError, RouteResult, Routing, Step, Trace,
};

use crate::{dogleg, greedy, lea, swbox, yacr, ChannelLayout, ChannelSpec, SpecError};

/// Recovers the channel encoding, folding spec errors into the shared
/// error type.
fn spec_of(problem: &Problem) -> Result<ChannelSpec, RouteError> {
    ChannelSpec::from_problem(problem).map_err(|e| match e {
        SpecError::NotAChannel { reason } => RouteError::Unsupported { reason },
        other => RouteError::Unsupported { reason: other.to_string() },
    })
}

/// Re-commits wiring realized on a `tracks + 2`-row channel grid onto the
/// caller's (equal-width, possibly taller) problem. The realized top pin
/// row maps to the caller's top row; vertical runs crossing the seam are
/// stretched with intermediate steps.
///
/// Correctness of the stretch: in the realized grid the only slot in
/// column `x` on the crossing seam is `(x, rh-1)` on M2, owned by at most
/// one net — so the stretched cells `(x, rh-1..h-1)` on M2 cannot be
/// claimed by two different nets.
fn transplant(problem: &Problem, realized: &Problem, routed: &RouteDb) -> RouteResult {
    if realized.width() != problem.width() {
        return Err(RouteError::Unroutable {
            reason: format!(
                "solution needs {} columns but the problem has {}",
                realized.width(),
                problem.width()
            ),
        });
    }
    if realized.height() > problem.height() {
        return Err(RouteError::BudgetExhausted { tracks: realized.height() as usize - 2 });
    }
    let rh = realized.height() as i32;
    let h = problem.height() as i32;
    let map_y = |y: i32| if y == rh - 1 { h - 1 } else { y };

    let mut db = RouteDb::new(problem);
    for net in realized.nets() {
        // Realized nets are named after their spec numbers, which
        // `ChannelSpec::from_problem` assigned as problem index + 1.
        let number: usize = net.name.parse().expect("realized channel nets are numbered");
        let target = NetId(number as u32 - 1);
        for (_, trace) in routed.traces(net.id) {
            let mut steps: Vec<Step> = Vec::with_capacity(trace.steps().len());
            for s in trace.steps() {
                let mapped = Step::new(Point::new(s.at.x, map_y(s.at.y)), s.layer);
                if let Some(prev) = steps.last().copied() {
                    let gap = (mapped.at.y - prev.at.y).abs();
                    if prev.at.x == mapped.at.x && prev.layer == mapped.layer && gap > 1 {
                        let dir = if mapped.at.y > prev.at.y { 1 } else { -1 };
                        let mut y = prev.at.y + dir;
                        while y != mapped.at.y {
                            steps.push(Step::new(Point::new(prev.at.x, y), prev.layer));
                            y += dir;
                        }
                    }
                }
                steps.push(mapped);
            }
            let stretched = Trace::from_steps(steps).map_err(|e| RouteError::Unroutable {
                reason: format!("stretched trace is not contiguous: {e}"),
            })?;
            db.commit(target, stretched).map_err(|e| RouteError::Unroutable {
                reason: format!("transplant conflict: {e}"),
            })?;
        }
    }
    Ok(Routing { db, failed: Vec::new() })
}

/// Realizes an abstract layout and transplants it onto `problem`.
fn realize_onto(problem: &Problem, spec: &ChannelSpec, layout: &ChannelLayout) -> RouteResult {
    if layout.extra_columns > 0 {
        return Err(RouteError::Unroutable {
            reason: format!("solution overflows the channel by {} columns", layout.extra_columns),
        });
    }
    let (realized, routed) = layout.realize(spec).map_err(|e| RouteError::Unroutable {
        reason: format!("layout realization failed: {e}"),
    })?;
    transplant(problem, &realized, &routed)
}

/// The Left-Edge Algorithm behind the shared trait.
#[derive(Debug, Clone, Copy, Default)]
pub struct LeaRouter;

impl DetailedRouter for LeaRouter {
    fn name(&self) -> &str {
        "lea"
    }

    fn route(&self, problem: &Problem) -> RouteResult {
        let spec = spec_of(problem)?;
        let sol = lea::route(&spec)?;
        realize_onto(problem, &spec, &sol.layout)
    }
}

/// Deutsch's dogleg router behind the shared trait.
#[derive(Debug, Clone, Copy, Default)]
pub struct DoglegRouter;

impl DetailedRouter for DoglegRouter {
    fn name(&self) -> &str {
        "dogleg"
    }

    fn route(&self, problem: &Problem) -> RouteResult {
        let spec = spec_of(problem)?;
        let sol = dogleg::route(&spec)?;
        realize_onto(problem, &spec, &sol.layout)
    }
}

/// The Rivest–Fiduccia greedy channel router behind the shared trait.
///
/// The greedy sweep may overshoot the channel on the right; since the
/// caller's problem has a fixed width, an overshooting solution is
/// reported as [`RouteError::Unroutable`] rather than silently widened.
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedyRouter;

impl DetailedRouter for GreedyRouter {
    fn name(&self) -> &str {
        "greedy"
    }

    fn route(&self, problem: &Problem) -> RouteResult {
        let spec = spec_of(problem)?;
        let sol = greedy::route(&spec)?;
        realize_onto(problem, &spec, &sol.layout)
    }
}

/// The YACR-II-style router behind the shared trait.
#[derive(Debug, Clone, Copy)]
pub struct YacrRouter {
    /// Extra tracks beyond density the router may grow into.
    pub max_extra: u32,
}

impl Default for YacrRouter {
    fn default() -> Self {
        YacrRouter { max_extra: 8 }
    }
}

impl DetailedRouter for YacrRouter {
    fn name(&self) -> &str {
        "yacr"
    }

    fn route(&self, problem: &Problem) -> RouteResult {
        let spec = spec_of(problem)?;
        let sol = yacr::route(&spec, self.max_extra)?;
        transplant(problem, &sol.problem, &sol.db)
    }
}

/// The greedy switchbox sweep behind the shared trait. Unlike the channel
/// adapters it routes the caller's problem directly — no spec detour.
#[derive(Debug, Clone, Copy, Default)]
pub struct SwboxRouter;

impl DetailedRouter for SwboxRouter {
    fn name(&self) -> &str {
        "swbox"
    }

    fn route(&self, problem: &Problem) -> RouteResult {
        let sol = swbox::route(problem)?;
        Ok(Routing { db: sol.db, failed: Vec::new() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use route_model::PinSide;
    use route_verify::verify;

    fn primer_spec() -> ChannelSpec {
        // Acyclic vertical constraints (edges 1->2, 2->4, 3->4) so even
        // the dogleg-free left-edge router completes.
        ChannelSpec::new(vec![1, 1, 2, 0, 3, 3, 0, 4], vec![0, 2, 4, 2, 0, 4, 3, 0]).unwrap()
    }

    #[test]
    fn spec_round_trips_through_problem() {
        let spec = primer_spec();
        let problem = spec.to_problem(6);
        let back = ChannelSpec::from_problem(&problem).unwrap();
        // `to_problem` names nets after their numbers and orders them
        // ascending, so the round trip is the identity here.
        assert_eq!(back, spec);
    }

    #[test]
    fn non_channels_are_rejected_as_unsupported() {
        let mut b = route_model::ProblemBuilder::switchbox(8, 6);
        b.net("a").pin_side(PinSide::Left, 2).pin_side(PinSide::Right, 3);
        let side_pins = b.build().unwrap();
        for router in channel_routers() {
            match router.route(&side_pins) {
                Err(RouteError::Unsupported { .. }) => {}
                other => panic!("{}: expected Unsupported, got {other:?}", router.name()),
            }
        }
    }

    fn channel_routers() -> Vec<Box<dyn DetailedRouter>> {
        vec![
            Box::new(LeaRouter),
            Box::new(DoglegRouter),
            Box::new(GreedyRouter),
            Box::new(YacrRouter::default()),
        ]
    }

    #[test]
    fn adapters_route_a_channel_problem_legally() {
        let spec = primer_spec();
        // Offer plenty of tracks so every baseline fits.
        let problem = spec.to_problem(10);
        for router in channel_routers() {
            let routing =
                router.route(&problem).unwrap_or_else(|e| panic!("{} failed: {e}", router.name()));
            assert!(routing.is_complete(), "{}", router.name());
            let report = verify(&problem, &routing.db);
            assert!(report.is_clean(), "{}: {report}", router.name());
        }
    }

    #[test]
    fn too_few_tracks_is_budget_exhausted() {
        let spec = primer_spec();
        // Density is >= 2; one track cannot hold the left-edge solution.
        let problem = spec.to_problem(1);
        match LeaRouter.route(&problem) {
            Err(RouteError::BudgetExhausted { tracks }) => assert!(tracks > 1),
            other => panic!("expected BudgetExhausted, got {other:?}"),
        }
    }

    #[test]
    fn adapters_emit_summary_events_through_the_trait() {
        use route_model::EventLog;
        let spec = primer_spec();
        let problem = spec.to_problem(10);
        for router in channel_routers() {
            let mut log = EventLog::new();
            let observed = router
                .route_observed(&problem, &mut log)
                .unwrap_or_else(|e| panic!("{} failed: {e}", router.name()));
            let plain = router.route(&problem).unwrap();
            assert_eq!(
                observed.db.checksum(),
                plain.db.checksum(),
                "{}: observation changed the result",
                router.name()
            );
            let nets = problem.nets().len();
            assert_eq!(log.count_kind("net_scheduled"), nets, "{}", router.name());
            assert_eq!(log.count_kind("net_committed"), nets, "{}", router.name());
            assert_eq!(log.count_kind("net_failed"), 0, "{}", router.name());
        }
    }

    #[test]
    fn swbox_adapter_emits_summary_events() {
        use route_model::EventLog;
        let mut b = route_model::ProblemBuilder::switchbox(8, 6);
        b.net("a").pin_side(PinSide::Left, 1).pin_side(PinSide::Right, 1);
        b.net("b").pin_side(PinSide::Top, 3).pin_side(PinSide::Bottom, 3);
        let problem = b.build().unwrap();
        let mut log = EventLog::new();
        let observed = SwboxRouter.route_observed(&problem, &mut log).unwrap();
        assert_eq!(observed.db.checksum(), SwboxRouter.route(&problem).unwrap().db.checksum());
        assert_eq!(log.count_kind("net_scheduled"), 2);
        assert_eq!(log.count_kind("net_committed"), 2);
    }

    #[test]
    fn swbox_adapter_matches_direct_call() {
        let mut b = route_model::ProblemBuilder::switchbox(8, 6);
        b.net("a").pin_side(PinSide::Left, 1).pin_side(PinSide::Right, 1);
        b.net("b").pin_side(PinSide::Top, 3).pin_side(PinSide::Bottom, 3);
        let problem = b.build().unwrap();
        let via_trait = SwboxRouter.route(&problem).unwrap();
        let direct = swbox::route(&problem).unwrap();
        assert_eq!(via_trait.db.checksum(), direct.db.checksum());
        assert!(via_trait.is_complete());
    }
}
