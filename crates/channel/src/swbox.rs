//! A greedy switchbox router in the style of Luk (INTEGRATION 1985).
//!
//! Luk's router extends the Rivest–Fiduccia greedy channel sweep to
//! switchboxes: rows are seeded from the **left-edge** pins, the sweep
//! brings in top/bottom pins column by column, and between columns each
//! net is **steered** vertically toward the row of its **right-edge**
//! pin so it arrives at the correct exit when the sweep hits the last
//! column. Unlike the channel variant there is no escape hatch: the box
//! has fixed width and height, so the router either finishes inside it
//! or fails — which is precisely why switchboxes were the hard
//! benchmark for this router generation.
//!
//! The implementation works directly on the workspace [`Problem`] model
//! (boundary pins, natural layers) and emits a fully committed
//! [`RouteDb`], so results verify through `route-verify` like every
//! other router.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use route_geom::{Layer, Point};
use route_model::{NetId, Problem, RouteDb, Step, Trace};

/// Why the greedy switchbox sweep gave up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SwboxError {
    /// The problem is not a plain switchbox (interior pins, obstacles,
    /// irregular region, or pins on non-natural layers).
    NotASwitchbox {
        /// Explanation of the offending feature.
        reason: String,
    },
    /// A top or bottom pin could not be brought onto any row.
    PinBlocked {
        /// The column of the pin.
        column: u32,
        /// The net that could not enter.
        net: NetId,
    },
    /// A net did not reach its right-edge exit row.
    ExitMissed {
        /// The net that missed its exit.
        net: NetId,
        /// The exit row.
        row: u32,
    },
    /// A net was still split across rows at the end of the sweep.
    StillSplit {
        /// The split net.
        net: NetId,
    },
}

impl fmt::Display for SwboxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SwboxError::NotASwitchbox { reason } => write!(f, "not a plain switchbox: {reason}"),
            SwboxError::PinBlocked { column, net } => {
                write!(f, "pin of {net} in column {column} cannot reach a row")
            }
            SwboxError::ExitMissed { net, row } => {
                write!(f, "{net} did not reach its exit row {row}")
            }
            SwboxError::StillSplit { net } => write!(f, "{net} is still split at the last column"),
        }
    }
}

impl Error for SwboxError {}

impl From<SwboxError> for crate::RouteError {
    fn from(e: SwboxError) -> Self {
        match e {
            SwboxError::NotASwitchbox { reason } => crate::RouteError::Unsupported { reason },
            other => crate::RouteError::Unroutable { reason: other.to_string() },
        }
    }
}

/// Result of a successful greedy switchbox run.
#[derive(Debug, Clone)]
pub struct SwboxSolution {
    /// The fully committed routing.
    pub db: RouteDb,
    /// Vertical steering moves performed.
    pub steers: usize,
}

#[derive(Debug, Default, Clone)]
struct NetPins {
    left: Vec<u32>,
    right: Vec<u32>,
    top: Vec<u32>,
    bottom: Vec<u32>,
}

struct Sweep {
    height: i32,
    /// Net carried by each row at the current column boundary.
    carrier: Vec<Option<NetId>>,
    /// Start column of each live horizontal run.
    run_start: Vec<usize>,
    /// Output horizontal segments `(net, row, c0, c1)`.
    hsegs: Vec<(NetId, i32, usize, usize)>,
    /// Output vertical segments `(net, col, r0, r1)` with junction rows
    /// needing vias.
    vsegs: Vec<(NetId, usize, i32, i32, Vec<i32>)>,
    /// Vertical runs of the current column, for disjointness.
    col_runs: Vec<(NetId, i32, i32)>,
    /// Per net: last column with any pin involvement.
    last_col: BTreeMap<NetId, usize>,
    pins: BTreeMap<NetId, NetPins>,
    steers: usize,
}

impl Sweep {
    fn rows_of(&self, net: NetId) -> Vec<i32> {
        (0..self.height).filter(|&r| self.carrier[r as usize] == Some(net)).collect()
    }

    fn run_clear(&self, net: NetId, r0: i32, r1: i32) -> bool {
        debug_assert!(r0 <= r1);
        self.col_runs.iter().all(|&(n, a, b)| n == net || r1 < a || b < r0)
    }

    /// Records a vertical run at `col` spanning rows `r0..=r1`, with vias
    /// at every row of `net`'s current rows inside the span plus the
    /// given extra junctions.
    fn emit_run(&mut self, net: NetId, col: usize, r0: i32, r1: i32, extra: &[i32]) {
        let (r0, r1) = (r0.min(r1), r0.max(r1));
        self.col_runs.push((net, r0, r1));
        let mut junctions: Vec<i32> =
            self.rows_of(net).into_iter().filter(|&r| r >= r0 && r <= r1).collect();
        junctions.extend(extra.iter().copied().filter(|&r| r >= r0 && r <= r1));
        junctions.sort_unstable();
        junctions.dedup();
        self.vsegs.push((net, col, r0, r1, junctions));
    }

    fn claim(&mut self, row: i32, net: NetId, col: usize) {
        self.carrier[row as usize] = Some(net);
        self.run_start[row as usize] = col;
    }

    fn release(&mut self, row: i32, col: usize) {
        if let Some(net) = self.carrier[row as usize].take() {
            self.hsegs.push((net, row, self.run_start[row as usize], col));
        }
    }

    /// Brings the pin of `net` at the top (`from_top`) or bottom edge of
    /// `col` onto a row.
    fn connect_edge_pin(
        &mut self,
        net: NetId,
        col: usize,
        from_top: bool,
    ) -> Result<(), SwboxError> {
        let edge = if from_top { self.height - 1 } else { 0 };
        // Candidate rows nearest the pin's edge first: own rows, then
        // empty rows.
        let mut candidates: Vec<i32> = self.rows_of(net);
        let mut empties: Vec<i32> =
            (0..self.height).filter(|&r| self.carrier[r as usize].is_none()).collect();
        if from_top {
            candidates.sort_by_key(|&r| self.height - 1 - r);
            empties.sort_by_key(|&r| self.height - 1 - r);
        } else {
            candidates.sort_unstable();
            empties.sort_unstable();
        }
        for own in candidates {
            if self.run_clear(net, own.min(edge), own.max(edge)) {
                self.emit_run(net, col, own.min(edge), own.max(edge), &[]);
                return Ok(());
            }
        }
        for empty in empties {
            if self.run_clear(net, empty.min(edge), empty.max(edge)) {
                self.claim(empty, net, col);
                self.emit_run(net, col, empty.min(edge), empty.max(edge), &[]);
                return Ok(());
            }
        }
        Err(SwboxError::PinBlocked { column: col as u32, net })
    }

    /// One collapse attempt per split net.
    fn collapse(&mut self, col: usize) {
        let mut nets: Vec<NetId> = self.carrier.iter().flatten().copied().collect();
        nets.sort_unstable();
        nets.dedup();
        for net in nets {
            let rows = self.rows_of(net);
            if rows.len() < 2 {
                continue;
            }
            for w in rows.windows(2) {
                if self.run_clear(net, w[0], w[1]) {
                    self.emit_run(net, col, w[0], w[1], &[]);
                    // Keep the row closer to this net's exits.
                    let keep = self.preferred_row(net, w[0], w[1]);
                    let drop = if keep == w[0] { w[1] } else { w[0] };
                    self.release(drop, col);
                    break;
                }
            }
        }
    }

    /// Of two rows, the one closer to the net's right-edge exits (or the
    /// lower row when the net has none).
    fn preferred_row(&self, net: NetId, a: i32, b: i32) -> i32 {
        let pins = &self.pins[&net];
        let Some(&target) = pins.right.first() else { return a.min(b) };
        if (a - target as i32).abs() <= (b - target as i32).abs() {
            a
        } else {
            b
        }
    }

    /// Steers single-row nets toward their exit rows when vertical space
    /// allows.
    fn steer(&mut self, col: usize) {
        let mut nets: Vec<NetId> = self.carrier.iter().flatten().copied().collect();
        nets.sort_unstable();
        nets.dedup();
        for net in nets {
            let rows = self.rows_of(net);
            let [row] = rows[..] else { continue };
            let Some(&exit) = self.pins[&net].right.first() else { continue };
            let exit = exit as i32;
            if row == exit {
                continue;
            }
            // The free row closest to the exit, scanning from the exit
            // back toward the current row. Occupied rows in between are
            // no obstacle — the vertical run crosses them on M2.
            let dir = if exit > row { 1 } else { -1 };
            let mut dest = row;
            let mut probe = exit;
            while probe != row {
                if self.carrier[probe as usize].is_none() {
                    dest = probe;
                    break;
                }
                probe -= dir;
            }
            if dest != row && self.run_clear(net, row.min(dest), row.max(dest)) {
                // The destination row is claimed only after the run is
                // emitted, so it must be passed as an explicit junction.
                self.emit_run(net, col, row.min(dest), row.max(dest), &[dest]);
                self.claim(dest, net, col);
                self.release(row, col);
                self.steers += 1;
            }
        }
    }

    /// Releases rows of nets with no future pin involvement.
    fn retire(&mut self, col: usize) {
        for row in 0..self.height {
            let Some(net) = self.carrier[row as usize] else { continue };
            if self.pins[&net].right.is_empty()
                && self.last_col[&net] <= col
                && self.rows_of(net).len() == 1
            {
                self.release(row, col);
            }
        }
    }
}

/// Routes a plain switchbox `problem` with the greedy sweep.
///
/// # Errors
///
/// Returns [`SwboxError::NotASwitchbox`] for problems with interior
/// pins, obstacles, irregular regions or non-natural pin layers, and the
/// other variants when the sweep cannot complete — greedy switchbox
/// routing has no fallback space, so failure on hard boxes is expected
/// behaviour (the rip-up router is the fix).
pub fn route(problem: &Problem) -> Result<SwboxSolution, SwboxError> {
    let (w, h) = (problem.width() as i32, problem.height() as i32);
    if problem.region().is_some() || !problem.obstacles().is_empty() {
        return Err(SwboxError::NotASwitchbox {
            reason: "region or obstacles present".to_string(),
        });
    }

    // Classify pins by side; validate natural layers.
    let mut pins: BTreeMap<NetId, NetPins> = BTreeMap::new();
    let mut last_col: BTreeMap<NetId, usize> = BTreeMap::new();
    for net in problem.nets() {
        let entry = pins.entry(net.id).or_default();
        let mut last = 0usize;
        for pin in &net.pins {
            let (p, layer) = (pin.at, pin.layer);
            let side_col = if p.x == 0 && layer == Layer::M1 {
                entry.left.push(p.y as u32);
                0
            } else if p.x == w - 1 && layer == Layer::M1 {
                entry.right.push(p.y as u32);
                (w - 1) as usize
            } else if p.y == h - 1 && layer == Layer::M2 {
                entry.top.push(p.x as u32);
                p.x as usize
            } else if p.y == 0 && layer == Layer::M2 {
                entry.bottom.push(p.x as u32);
                p.x as usize
            } else {
                return Err(SwboxError::NotASwitchbox {
                    reason: format!("pin {pin} is not a natural boundary pin"),
                });
            };
            last = last.max(side_col);
        }
        last_col.insert(net.id, last);
    }

    let mut sweep = Sweep {
        height: h,
        carrier: vec![None; h as usize],
        run_start: vec![0; h as usize],
        hsegs: Vec::new(),
        vsegs: Vec::new(),
        col_runs: Vec::new(),
        last_col,
        pins,
        steers: 0,
    };

    // Seed rows from the left pins.
    let seeds: Vec<(NetId, u32)> =
        sweep.pins.iter().flat_map(|(&net, p)| p.left.iter().map(move |&r| (net, r))).collect();
    for (net, row) in seeds {
        sweep.claim(row as i32, net, 0);
    }

    // The sweep proper.
    let top_net = |problem: &Problem, c: i32| -> Option<NetId> {
        problem.nets().iter().find_map(|n| {
            n.pins
                .iter()
                .any(|p| p.at == Point::new(c, h - 1) && p.layer == Layer::M2)
                .then_some(n.id)
        })
    };
    let bottom_net = |problem: &Problem, c: i32| -> Option<NetId> {
        problem.nets().iter().find_map(|n| {
            n.pins.iter().any(|p| p.at == Point::new(c, 0) && p.layer == Layer::M2).then_some(n.id)
        })
    };
    for c in 0..w as usize {
        sweep.col_runs.clear();
        let t = top_net(problem, c as i32);
        let b = bottom_net(problem, c as i32);
        match (t, b) {
            (Some(tn), Some(bn)) if tn == bn => {
                // Through pin pair: full-column run.
                if sweep.rows_of(tn).is_empty() {
                    // Claim any empty row for the junction.
                    let Some(row) = (0..h).find(|&r| sweep.carrier[r as usize].is_none()) else {
                        return Err(SwboxError::PinBlocked { column: c as u32, net: tn });
                    };
                    sweep.claim(row, tn, c);
                }
                if !sweep.run_clear(tn, 0, h - 1) {
                    return Err(SwboxError::PinBlocked { column: c as u32, net: tn });
                }
                sweep.emit_run(tn, c, 0, h - 1, &[]);
                // The full run joins all rows: keep the preferred one.
                let rows = sweep.rows_of(tn);
                if rows.len() > 1 {
                    let keep = sweep.preferred_row(tn, rows[0], *rows.last().expect("nonempty"));
                    for r in rows {
                        if r != keep {
                            sweep.release(r, c);
                        }
                    }
                }
            }
            (t, b) => {
                if let Some(bn) = b {
                    sweep.connect_edge_pin(bn, c, false)?;
                }
                if let Some(tn) = t {
                    sweep.connect_edge_pin(tn, c, true)?;
                }
            }
        }
        sweep.collapse(c);
        sweep.steer(c);
        sweep.retire(c);
    }

    // Exit handling at the last column.
    let final_col = (w - 1) as usize;
    let exits: Vec<(NetId, Vec<u32>)> = sweep
        .pins
        .iter()
        .filter(|(_, p)| !p.right.is_empty())
        .map(|(&net, p)| (net, p.right.clone()))
        .collect();
    for (net, rights) in exits {
        let rows = sweep.rows_of(net);
        if rows.is_empty() {
            return Err(SwboxError::ExitMissed { net, row: rights[0] });
        }
        for &exit in &rights {
            let exit = exit as i32;
            if sweep.carrier[exit as usize] == Some(net) {
                continue; // the horizontal run ends on the pin itself
            }
            if let Some(other) = sweep.carrier[exit as usize] {
                if other != net {
                    return Err(SwboxError::ExitMissed { net, row: exit as u32 });
                }
            }
            // Vertical hop at the last column from the nearest own row.
            let from = *rows.iter().min_by_key(|&&r| (r - exit).abs()).expect("rows nonempty");
            if !sweep.run_clear(net, from.min(exit), from.max(exit)) {
                return Err(SwboxError::ExitMissed { net, row: exit as u32 });
            }
            sweep.emit_run(net, final_col, from.min(exit), from.max(exit), &[exit]);
        }
    }
    // Any net still split has unconnected rows.
    for net in problem.nets() {
        if sweep.rows_of(net.id).len() > 1 {
            return Err(SwboxError::StillSplit { net: net.id });
        }
    }
    // Close all remaining runs at the final column.
    for row in 0..h {
        sweep.release(row, final_col);
    }

    // Realize onto the grid.
    let mut db = RouteDb::new(problem);
    let commit = |db: &mut RouteDb, net: NetId, steps: Vec<Step>| -> Result<(), SwboxError> {
        db.commit(net, Trace::from_steps(steps).expect("sweep emits contiguous runs"))
            .map(|_| ())
            .map_err(|e| SwboxError::NotASwitchbox { reason: format!("internal conflict: {e}") })
    };
    for &(net, row, c0, c1) in &sweep.hsegs {
        let steps: Vec<Step> =
            (c0..=c1).map(|x| Step::new(Point::new(x as i32, row), Layer::M1)).collect();
        commit(&mut db, net, steps)?;
    }
    for (net, col, r0, r1, junctions) in &sweep.vsegs {
        let steps: Vec<Step> =
            (*r0..=*r1).map(|y| Step::new(Point::new(*col as i32, y), Layer::M2)).collect();
        commit(&mut db, *net, steps)?;
        for &j in junctions {
            let p = Point::new(*col as i32, j);
            commit(&mut db, *net, vec![Step::new(p, Layer::M2), Step::new(p, Layer::M1)])?;
        }
    }
    Ok(SwboxSolution { db, steers: sweep.steers })
}

#[cfg(test)]
mod tests {
    use super::*;
    use route_model::{PinSide, ProblemBuilder};
    use route_verify::verify;

    fn check(problem: &Problem) -> SwboxSolution {
        let sol = route(problem).expect("routes");
        let report = verify(problem, &sol.db);
        assert!(report.is_clean(), "verification failed:\n{report}");
        sol
    }

    #[test]
    fn straight_across() {
        let mut b = ProblemBuilder::switchbox(8, 6);
        b.net("a").pin_side(PinSide::Left, 2).pin_side(PinSide::Right, 2);
        let p = b.build().unwrap();
        let sol = check(&p);
        assert_eq!(sol.steers, 0);
    }

    #[test]
    fn steering_to_a_different_exit_row() {
        let mut b = ProblemBuilder::switchbox(8, 6);
        b.net("a").pin_side(PinSide::Left, 1).pin_side(PinSide::Right, 4);
        let p = b.build().unwrap();
        let sol = check(&p);
        assert!(sol.steers >= 1, "must steer from row 1 to row 4");
    }

    #[test]
    fn top_bottom_pins_join_rows() {
        let mut b = ProblemBuilder::switchbox(8, 6);
        b.net("v").pin_side(PinSide::Bottom, 3).pin_side(PinSide::Top, 3);
        b.net("h").pin_side(PinSide::Left, 2).pin_side(PinSide::Right, 2);
        let p = b.build().unwrap();
        check(&p);
    }

    #[test]
    fn crossing_exits() {
        // Two nets whose exits are vertically swapped: both must steer.
        let mut b = ProblemBuilder::switchbox(10, 6);
        b.net("x").pin_side(PinSide::Left, 1).pin_side(PinSide::Right, 4);
        b.net("y").pin_side(PinSide::Left, 4).pin_side(PinSide::Right, 1);
        let p = b.build().unwrap();
        check(&p);
    }

    #[test]
    fn multi_pin_net_with_top_entry() {
        let mut b = ProblemBuilder::switchbox(10, 6);
        b.net("m").pin_side(PinSide::Left, 2).pin_side(PinSide::Top, 5).pin_side(PinSide::Right, 3);
        let p = b.build().unwrap();
        check(&p);
    }

    #[test]
    fn rejects_interior_pins() {
        let mut b = ProblemBuilder::switchbox(6, 6);
        b.net("bad").pin_at(Point::new(3, 3), Layer::M1).pin_side(PinSide::Left, 1);
        let p = b.build().unwrap();
        assert!(matches!(route(&p), Err(SwboxError::NotASwitchbox { .. })));
    }

    #[test]
    fn rejects_obstacles() {
        let mut b = ProblemBuilder::switchbox(6, 6);
        b.obstacle(Point::new(3, 3));
        b.net("a").pin_side(PinSide::Left, 1).pin_side(PinSide::Right, 1);
        let p = b.build().unwrap();
        assert!(matches!(route(&p), Err(SwboxError::NotASwitchbox { .. })));
    }

    #[test]
    fn congested_box_fails_gracefully() {
        // More crossing nets than the box can steer: failure, not panic.
        let mut b = ProblemBuilder::switchbox(4, 6);
        for i in 0..5 {
            b.net(format!("n{i}")).pin_side(PinSide::Left, i).pin_side(PinSide::Right, 5 - i);
        }
        let p = b.build().unwrap();
        // Either it completes (verified) or reports a structured error.
        match route(&p) {
            Ok(sol) => assert!(verify(&p, &sol.db).is_clean()),
            Err(e) => {
                let _ = e.to_string();
            }
        }
    }
}
