use std::collections::{BTreeMap, BTreeSet};

use crate::ChannelSpec;

/// The vertical constraint graph (VCG) of a channel.
///
/// An edge `a -> b` means net `a` has a top pin and net `b` a bottom pin
/// in the same column, so `a`'s track must lie strictly above `b`'s.
/// Routers of the left-edge family must respect every edge; a cycle makes
/// the channel unroutable without doglegs.
///
/// Nodes are net numbers for whole-net routing, or sub-net keys for
/// dogleg routing — the graph is agnostic.
///
/// # Examples
///
/// ```
/// use route_channel::{ChannelSpec, Vcg};
///
/// // Columns force 1 above 2 and 2 above 1: a cycle.
/// let spec = ChannelSpec::new(vec![1, 2], vec![2, 1])?;
/// let vcg = Vcg::from_spec(&spec);
/// assert!(vcg.find_cycle().is_some());
/// # Ok::<(), route_channel::SpecError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Vcg {
    /// Adjacency: node -> nodes that must lie strictly below it.
    below: BTreeMap<u32, BTreeSet<u32>>,
    nodes: BTreeSet<u32>,
}

impl Vcg {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Vcg::default()
    }

    /// Builds the whole-net VCG of a channel.
    pub fn from_spec(spec: &ChannelSpec) -> Self {
        let mut vcg = Vcg::new();
        for net in spec.net_ids() {
            vcg.add_node(net);
        }
        for c in 0..spec.width() {
            let (t, b) = (spec.top(c), spec.bottom(c));
            if t != 0 && b != 0 && t != b {
                vcg.add_edge(t, b);
            }
        }
        vcg
    }

    /// Registers a node without edges.
    pub fn add_node(&mut self, node: u32) {
        self.nodes.insert(node);
    }

    /// Adds the constraint "`above` must be strictly above `below`".
    pub fn add_edge(&mut self, above: u32, below: u32) {
        self.nodes.insert(above);
        self.nodes.insert(below);
        self.below.entry(above).or_default().insert(below);
    }

    /// All registered nodes, ascending.
    pub fn nodes(&self) -> impl Iterator<Item = u32> + '_ {
        self.nodes.iter().copied()
    }

    /// Nodes that must lie strictly below `node`.
    pub fn below(&self, node: u32) -> impl Iterator<Item = u32> + '_ {
        self.below.get(&node).into_iter().flatten().copied()
    }

    /// Nodes that must lie strictly above `node`.
    pub fn above(&self, node: u32) -> Vec<u32> {
        self.below.iter().filter(|(_, set)| set.contains(&node)).map(|(&n, _)| n).collect()
    }

    /// Finds one directed cycle, if any, and returns its nodes in order.
    pub fn find_cycle(&self) -> Option<Vec<u32>> {
        #[derive(Clone, Copy, PartialEq)]
        enum Mark {
            White,
            Grey,
            Black,
        }
        let mut marks: BTreeMap<u32, Mark> = self.nodes.iter().map(|&n| (n, Mark::White)).collect();
        let mut stack: Vec<u32> = Vec::new();

        fn dfs(
            node: u32,
            graph: &Vcg,
            marks: &mut BTreeMap<u32, Mark>,
            stack: &mut Vec<u32>,
        ) -> Option<Vec<u32>> {
            marks.insert(node, Mark::Grey);
            stack.push(node);
            for next in graph.below(node) {
                match marks.get(&next).copied().unwrap_or(Mark::White) {
                    Mark::Grey => {
                        let start = stack.iter().position(|&n| n == next).unwrap_or(0);
                        return Some(stack[start..].to_vec());
                    }
                    Mark::White => {
                        if let Some(cycle) = dfs(next, graph, marks, stack) {
                            return Some(cycle);
                        }
                    }
                    Mark::Black => {}
                }
            }
            stack.pop();
            marks.insert(node, Mark::Black);
            None
        }

        for &node in &self.nodes {
            if marks[&node] == Mark::White {
                if let Some(cycle) = dfs(node, self, &mut marks, &mut stack) {
                    return Some(cycle);
                }
            }
        }
        None
    }

    /// Length (in edges) of the longest directed path — a lower bound on
    /// tracks for cycle-free channels beyond the density bound.
    ///
    /// Returns `None` if the graph is cyclic.
    pub fn longest_path(&self) -> Option<usize> {
        if self.find_cycle().is_some() {
            return None;
        }
        let mut memo: BTreeMap<u32, usize> = BTreeMap::new();
        fn depth(node: u32, graph: &Vcg, memo: &mut BTreeMap<u32, usize>) -> usize {
            if let Some(&d) = memo.get(&node) {
                return d;
            }
            let d = graph.below(node).map(|n| 1 + depth(n, graph, memo)).max().unwrap_or(0);
            memo.insert(node, d);
            d
        }
        self.nodes.iter().map(|&n| depth(n, self, &mut memo)).max().or(Some(0))
    }
}

/// The zone table of a channel: maximal sets of mutually overlapping net
/// spans, one per zone of columns. The largest zone size equals the
/// channel density.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ZoneTable {
    zones: Vec<(usize, usize, Vec<u32>)>,
}

impl ZoneTable {
    /// Computes the zone table of `spec`.
    pub fn from_spec(spec: &ChannelSpec) -> Self {
        let nets = spec.net_ids();
        let crossing = |c: usize| -> BTreeSet<u32> {
            nets.iter()
                .copied()
                .filter(|&n| {
                    let (l, r) = spec.span(n).expect("net from spec");
                    l <= c && c <= r
                })
                .collect()
        };
        let mut zones: Vec<(usize, usize, BTreeSet<u32>)> = Vec::new();
        for c in 0..spec.width() {
            let set = crossing(c);
            match zones.last_mut() {
                // Extend the zone while the new set is a subset or superset
                // chain; start a new zone when neither contains the other.
                Some((_, end, cur)) if set.is_subset(cur) => *end = c,
                Some((_, end, cur)) if cur.is_subset(&set) => {
                    *end = c;
                    *cur = set;
                }
                _ => zones.push((c, c, set)),
            }
        }
        ZoneTable {
            zones: zones.into_iter().map(|(s, e, set)| (s, e, set.into_iter().collect())).collect(),
        }
    }

    /// The zones as `(first column, last column, nets)` triples.
    pub fn zones(&self) -> &[(usize, usize, Vec<u32>)] {
        &self.zones
    }

    /// The largest zone cardinality (equals the channel density).
    pub fn max_zone(&self) -> usize {
        self.zones.iter().map(|(_, _, nets)| nets.len()).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vcg_edges_from_spec() {
        let spec = ChannelSpec::new(vec![1, 2, 0, 3, 2], vec![2, 1, 3, 0, 3]).unwrap();
        let vcg = Vcg::from_spec(&spec);
        // Column 0: 1 above 2; column 1: 2 above 1; column 2: 3 below nothing (top 0).
        assert!(vcg.below(1).any(|n| n == 2));
        assert!(vcg.below(2).any(|n| n == 1));
        assert_eq!(vcg.above(1), vec![2]);
    }

    #[test]
    fn cycle_detection() {
        let spec = ChannelSpec::new(vec![1, 2], vec![2, 1]).unwrap();
        let vcg = Vcg::from_spec(&spec);
        let cycle = vcg.find_cycle().expect("1 <-> 2 cycle");
        assert_eq!(cycle.len(), 2);
        assert!(vcg.longest_path().is_none());
    }

    #[test]
    fn acyclic_longest_path() {
        // 1 above 2 above 3: chain of length 2.
        let spec = ChannelSpec::new(vec![1, 2, 1, 0], vec![2, 3, 0, 3]).unwrap();
        let vcg = Vcg::from_spec(&spec);
        assert!(vcg.find_cycle().is_none());
        assert_eq!(vcg.longest_path(), Some(2));
    }

    #[test]
    fn same_net_top_bottom_no_self_edge() {
        let spec = ChannelSpec::new(vec![1, 1], vec![1, 0]).unwrap();
        let vcg = Vcg::from_spec(&spec);
        assert!(vcg.find_cycle().is_none());
        assert_eq!(vcg.below(1).count(), 0);
    }

    #[test]
    fn zone_table_max_equals_density() {
        let spec = ChannelSpec::new(vec![1, 2, 0, 3, 2], vec![2, 1, 3, 0, 3]).unwrap();
        let zones = ZoneTable::from_spec(&spec);
        assert_eq!(zones.max_zone() as u32, spec.density());
        assert!(!zones.zones().is_empty());
    }

    #[test]
    fn empty_graph_longest_path_zero() {
        let vcg = Vcg::new();
        assert_eq!(vcg.longest_path(), Some(0));
    }
}
