use std::collections::BTreeSet;
use std::error::Error;
use std::fmt;

use route_model::{PinSide, Problem, ProblemBuilder};

/// Error produced when constructing an invalid [`ChannelSpec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// Top and bottom pin vectors differ in length.
    LengthMismatch {
        /// Length of the top vector.
        top: usize,
        /// Length of the bottom vector.
        bottom: usize,
    },
    /// The channel has zero columns.
    Empty,
    /// A net number appears only once (a net needs at least two pins).
    SinglePinNet {
        /// The offending net number.
        net: u32,
    },
    /// A general grid problem could not be interpreted as a channel
    /// (see [`ChannelSpec::from_problem`]).
    NotAChannel {
        /// Explanation of the offending feature.
        reason: String,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::LengthMismatch { top, bottom } => {
                write!(f, "top has {top} columns but bottom has {bottom}")
            }
            SpecError::Empty => f.write_str("channel has no columns"),
            SpecError::SinglePinNet { net } => {
                write!(f, "net {net} has a single pin")
            }
            SpecError::NotAChannel { reason } => {
                write!(f, "problem is not a channel: {reason}")
            }
        }
    }
}

impl Error for SpecError {}

/// A channel-routing instance in the classic textbook encoding: two
/// equal-length vectors of net numbers for the top and bottom edge pins,
/// with `0` meaning *no pin in this column*.
///
/// # Examples
///
/// ```
/// use route_channel::ChannelSpec;
///
/// let spec = ChannelSpec::new(vec![1, 0, 2], vec![0, 1, 2])?;
/// assert_eq!(spec.width(), 3);
/// assert_eq!(spec.net_ids(), vec![1, 2]);
/// # Ok::<(), route_channel::SpecError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelSpec {
    top: Vec<u32>,
    bottom: Vec<u32>,
}

impl ChannelSpec {
    /// Validates and wraps the two pin vectors.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] if the vectors differ in length, the channel
    /// is empty, or any net number occurs exactly once.
    pub fn new(top: Vec<u32>, bottom: Vec<u32>) -> Result<Self, SpecError> {
        if top.len() != bottom.len() {
            return Err(SpecError::LengthMismatch { top: top.len(), bottom: bottom.len() });
        }
        if top.is_empty() {
            return Err(SpecError::Empty);
        }
        let spec = ChannelSpec { top, bottom };
        for net in spec.net_ids() {
            if spec.pin_columns(net).len() == 1
                && spec.top.iter().filter(|&&n| n == net).count()
                    + spec.bottom.iter().filter(|&&n| n == net).count()
                    == 1
            {
                return Err(SpecError::SinglePinNet { net });
            }
        }
        Ok(spec)
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.top.len()
    }

    /// Net number of the top pin in column `col` (`0` if none).
    pub fn top(&self, col: usize) -> u32 {
        self.top[col]
    }

    /// Net number of the bottom pin in column `col` (`0` if none).
    pub fn bottom(&self, col: usize) -> u32 {
        self.bottom[col]
    }

    /// The raw top pin vector.
    pub fn top_pins(&self) -> &[u32] {
        &self.top
    }

    /// The raw bottom pin vector.
    pub fn bottom_pins(&self) -> &[u32] {
        &self.bottom
    }

    /// Sorted list of distinct net numbers appearing in the channel.
    pub fn net_ids(&self) -> Vec<u32> {
        let set: BTreeSet<u32> =
            self.top.iter().chain(self.bottom.iter()).copied().filter(|&n| n != 0).collect();
        set.into_iter().collect()
    }

    /// Columns in which `net` has at least one pin, ascending.
    pub fn pin_columns(&self, net: u32) -> Vec<usize> {
        (0..self.width()).filter(|&c| self.top[c] == net || self.bottom[c] == net).collect()
    }

    /// Horizontal span `[leftmost pin column, rightmost pin column]` of a
    /// net, or `None` for nets not in the channel.
    pub fn span(&self, net: u32) -> Option<(usize, usize)> {
        let cols = self.pin_columns(net);
        Some((*cols.first()?, *cols.last()?))
    }

    /// Local density of column `col`: number of nets whose span crosses
    /// (or pins into) the column.
    pub fn column_density(&self, col: usize) -> u32 {
        self.net_ids()
            .into_iter()
            .filter(|&n| {
                let (l, r) = self.span(n).expect("net id came from this spec");
                l <= col && col <= r
            })
            .count() as u32
    }

    /// Channel density: the maximum column density, the classic lower
    /// bound on the number of tracks any solution needs.
    pub fn density(&self) -> u32 {
        (0..self.width()).map(|c| self.column_density(c)).max().unwrap_or(0)
    }

    /// Total number of pins (non-zero entries).
    pub fn pin_count(&self) -> usize {
        self.top.iter().chain(self.bottom.iter()).filter(|&&n| n != 0).count()
    }

    /// Recovers the channel encoding from a general grid [`Problem`],
    /// the inverse of [`ChannelSpec::to_problem`] up to net renumbering:
    /// the net at problem index `i` becomes channel net number `i + 1`.
    ///
    /// This is what lets the channel routers sit behind the shared
    /// `DetailedRouter` trait: any problem whose pins all sit on the top
    /// and bottom rows (on the vertical layer M2) is channel-shaped.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::NotAChannel`] for problems with an irregular
    /// region, interior or side pins, pins off the vertical layer, or
    /// obstacles beyond the horizontal-layer blocks `to_problem` places
    /// on the two pin rows. Other [`SpecError`] variants surface if the
    /// recovered channel itself is degenerate (e.g. a single-pin net).
    pub fn from_problem(problem: &Problem) -> Result<Self, SpecError> {
        let fail = |reason: &str| SpecError::NotAChannel { reason: reason.to_string() };
        if problem.region().is_some() {
            return Err(fail("irregular routing region"));
        }
        if problem.height() < 3 {
            return Err(fail("no interior track rows"));
        }
        let height = problem.height() as i32;
        for &(p, layer) in problem.obstacles() {
            let pin_row = p.y == 0 || p.y == height - 1;
            let horizontal =
                matches!(layer, Some(route_geom::Layer::M1) | Some(route_geom::Layer::M3));
            if !(pin_row && horizontal) {
                return Err(fail("obstacles outside the blocked pin rows"));
            }
        }
        let width = problem.width() as usize;
        let mut top = vec![0u32; width];
        let mut bottom = vec![0u32; width];
        for (idx, net) in problem.nets().iter().enumerate() {
            let number = idx as u32 + 1;
            for pin in &net.pins {
                if pin.layer != route_geom::Layer::M2 {
                    return Err(fail("pin off the vertical layer M2"));
                }
                let slot = if pin.at.y == height - 1 {
                    &mut top[pin.at.x as usize]
                } else if pin.at.y == 0 {
                    &mut bottom[pin.at.x as usize]
                } else {
                    return Err(fail("pin not on the top or bottom row"));
                };
                // The builder already rejects two nets on one slot.
                debug_assert_eq!(*slot, 0);
                *slot = number;
            }
        }
        ChannelSpec::new(top, bottom)
    }

    /// Converts the channel into a general grid [`Problem`] with `tracks`
    /// interior rows: row 0 and the top row hold the pins (on the
    /// vertical layer M2), the rows between are free routing space.
    ///
    /// The pin rows are blocked on the horizontal layer M1 so that a
    /// general-region router cannot smuggle extra tracks through them —
    /// its track counts stay comparable with the channel routers'.
    ///
    /// This is how the general-region routers (the maze baseline and the
    /// rip-up/reroute router) attack channels: pick a track count, route
    /// the box, and search for the smallest count that completes.
    ///
    /// # Panics
    ///
    /// Panics if `tracks` is zero.
    pub fn to_problem(&self, tracks: usize) -> Problem {
        self.to_problem_with_layers(tracks, 2)
    }

    /// Like [`ChannelSpec::to_problem`], but with an explicit layer count.
    /// Three-layer (HVH) channels have a second horizontal layer M3, which
    /// roughly halves the tracks a good router needs.
    ///
    /// # Panics
    ///
    /// Panics if `tracks` is zero or `layers` is not 2 or 3.
    pub fn to_problem_with_layers(&self, tracks: usize, layers: u8) -> Problem {
        assert!(tracks > 0, "a channel needs at least one track");
        let height = tracks as u32 + 2;
        let mut builder = ProblemBuilder::switchbox(self.width() as u32, height);
        builder.layers(layers);
        // Pin rows carry only vertical entries: block every horizontal
        // layer there so track counts stay honest.
        let horizontal = [route_geom::Layer::M1, route_geom::Layer::M3];
        for x in 0..self.width() as i32 {
            for l in horizontal.into_iter().take(if layers >= 3 { 2 } else { 1 }) {
                builder.obstacle_on(route_geom::Point::new(x, 0), l);
                builder.obstacle_on(route_geom::Point::new(x, height as i32 - 1), l);
            }
        }
        for net in self.net_ids() {
            let mut nb = builder.net(format!("{net}"));
            for c in 0..self.width() {
                if self.top(c) == net {
                    nb.pin_side(PinSide::Top, c as u32);
                }
                if self.bottom(c) == net {
                    nb.pin_side(PinSide::Bottom, c as u32);
                }
            }
        }
        builder.build().expect("channel pins are distinct by construction")
    }
}

impl fmt::Display for ChannelSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "channel {} cols, {} nets, density {}",
            self.width(),
            self.net_ids().len(),
            self.density()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn primer() -> ChannelSpec {
        // A classic small example.
        ChannelSpec::new(vec![1, 2, 0, 3, 2], vec![2, 1, 3, 0, 3]).unwrap()
    }

    #[test]
    fn accessors() {
        let s = primer();
        assert_eq!(s.width(), 5);
        assert_eq!(s.top(1), 2);
        assert_eq!(s.bottom(0), 2);
        assert_eq!(s.net_ids(), vec![1, 2, 3]);
        assert_eq!(s.pin_count(), 8);
    }

    #[test]
    fn spans_and_density() {
        let s = primer();
        assert_eq!(s.span(1), Some((0, 1)));
        assert_eq!(s.span(2), Some((0, 4)));
        assert_eq!(s.span(3), Some((2, 4)));
        assert_eq!(s.span(9), None);
        // Column 2: nets 2 and 3 cross -> 2. Columns 3,4: 2 and 3.
        assert_eq!(s.column_density(0), 2);
        assert_eq!(s.density(), 2);
    }

    #[test]
    fn rejects_mismatched_lengths() {
        assert!(matches!(
            ChannelSpec::new(vec![1, 1], vec![1]),
            Err(SpecError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(ChannelSpec::new(vec![], vec![]), Err(SpecError::Empty));
    }

    #[test]
    fn rejects_single_pin_net() {
        assert!(matches!(
            ChannelSpec::new(vec![1, 2, 0], vec![1, 0, 0]),
            Err(SpecError::SinglePinNet { net: 2 })
        ));
    }

    #[test]
    fn net_spanning_same_column_twice_is_fine() {
        // Net 1 has top and bottom pin in the same column: two pins.
        let s = ChannelSpec::new(vec![1, 2], vec![1, 2]).unwrap();
        assert_eq!(s.pin_columns(1), vec![0]);
        assert_eq!(s.density(), 1);
    }
}
