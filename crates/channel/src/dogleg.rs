//! Deutsch's dogleg channel router (DAC 1976).
//!
//! Multi-pin nets are split at their internal pin columns into two-pin
//! **sub-nets**, each assigned its own track by the left-edge engine.
//! Splitting shortens track segments (lowering track counts toward
//! density) and breaks many vertical-constraint cycles that defeat the
//! plain left-edge algorithm. Cycles among two-pin nets remain fatal —
//! the limitation rip-up/reroute and maze-based routers remove.

use std::collections::BTreeMap;

use crate::lea::place_left_edge;
use crate::{ChannelLayout, ChannelSpec, HSeg, RouteError, VEnd, VSeg, Vcg};

/// One sub-net produced by splitting a net at its internal pin columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Subnet {
    /// Key used in the sub-net constraint graph (dense, 1-based).
    pub key: u32,
    /// Owning net number from the spec.
    pub net: u32,
    /// Leftmost column of the sub-net's track segment.
    pub x0: usize,
    /// Rightmost column of the sub-net's track segment.
    pub x1: usize,
}

/// A dogleg solution: sub-net decomposition, track assignment and layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DoglegSolution {
    /// Number of tracks used.
    pub tracks: usize,
    /// The sub-nets, in key order.
    pub subnets: Vec<Subnet>,
    /// Track per sub-net key.
    pub track_of: BTreeMap<u32, usize>,
    /// The realizable geometry.
    pub layout: ChannelLayout,
}

/// Splits every net of `spec` at its internal pin columns.
pub fn split_subnets(spec: &ChannelSpec) -> Vec<Subnet> {
    let mut subnets = Vec::new();
    let mut key = 1u32;
    for net in spec.net_ids() {
        let cols = spec.pin_columns(net);
        if cols.len() == 1 {
            subnets.push(Subnet { key, net, x0: cols[0], x1: cols[0] });
            key += 1;
            continue;
        }
        for w in cols.windows(2) {
            subnets.push(Subnet { key, net, x0: w[0], x1: w[1] });
            key += 1;
        }
    }
    subnets
}

/// Builds the sub-net vertical constraint graph: in every column, each
/// sub-net of the top pin's net ending there must lie above each sub-net
/// of the bottom pin's net ending there.
fn subnet_vcg(spec: &ChannelSpec, subnets: &[Subnet]) -> Vcg {
    let mut vcg = Vcg::new();
    for s in subnets {
        vcg.add_node(s.key);
    }
    let ends_at = |net: u32, col: usize| -> Vec<u32> {
        subnets
            .iter()
            .filter(|s| s.net == net && (s.x0 == col || s.x1 == col))
            .map(|s| s.key)
            .collect()
    };
    for c in 0..spec.width() {
        let (t, b) = (spec.top(c), spec.bottom(c));
        if t != 0 && b != 0 && t != b {
            for st in ends_at(t, c) {
                for sb in ends_at(b, c) {
                    vcg.add_edge(st, sb);
                }
            }
        }
    }
    vcg
}

/// Routes `spec` with the dogleg algorithm.
///
/// # Errors
///
/// Returns [`RouteError::VerticalCycle`] when even the sub-net constraint
/// graph is cyclic, or [`RouteError::BudgetExhausted`] if placement
/// stalls.
pub fn route(spec: &ChannelSpec) -> Result<DoglegSolution, RouteError> {
    let subnets = split_subnets(spec);
    let vcg = subnet_vcg(spec, &subnets);
    if let Some(cycle) = vcg.find_cycle() {
        // Report the owning nets, more useful than sub-net keys.
        let nets = cycle.iter().map(|k| subnets[(*k - 1) as usize].net).collect();
        return Err(RouteError::VerticalCycle { cycle: nets });
    }
    let items: Vec<(u32, usize, usize)> = subnets.iter().map(|s| (s.key, s.x0, s.x1)).collect();
    let track_of = place_left_edge(&items, &vcg, spec.width() * 2 + 2)?;
    let tracks = track_of.values().max().map_or(0, |&t| t + 1);

    let mut layout = ChannelLayout { tracks, ..ChannelLayout::default() };
    for s in &subnets {
        layout.hsegs.push(HSeg { net: s.net, track: track_of[&s.key], x0: s.x0, x1: s.x1 });
    }
    // Vertical wiring per (net, column): span every involved elevation —
    // pin rows plus the tracks of sub-nets ending at the column — with
    // consecutive segments so each track endpoint receives a via.
    for net in spec.net_ids() {
        for c in spec.pin_columns(net) {
            // Elevation encoding: Top = -1, Track(t) = t, Bottom = tracks.
            let mut elevations: Vec<i64> = Vec::new();
            if spec.top(c) == net {
                elevations.push(-1);
            }
            if spec.bottom(c) == net {
                elevations.push(tracks as i64);
            }
            for s in subnets.iter().filter(|s| s.net == net && (s.x0 == c || s.x1 == c)) {
                elevations.push(track_of[&s.key] as i64);
            }
            elevations.sort_unstable();
            elevations.dedup();
            let decode = |e: i64| -> VEnd {
                if e == -1 {
                    VEnd::Top
                } else if e == tracks as i64 {
                    VEnd::Bottom
                } else {
                    VEnd::Track(e as usize)
                }
            };
            for w in elevations.windows(2) {
                layout.vsegs.push(VSeg { net, col: c, a: decode(w[0]), b: decode(w[1]) });
            }
        }
    }
    Ok(DoglegSolution { tracks, subnets, track_of, layout })
}

#[cfg(test)]
mod tests {
    use super::*;
    use route_verify::verify;

    #[test]
    fn splits_multi_pin_nets() {
        let spec = ChannelSpec::new(vec![1, 1, 1, 0], vec![0, 1, 0, 1]).unwrap();
        let subs = split_subnets(&spec);
        // Net 1 pins in columns 0,1,2,3 -> three sub-nets.
        assert_eq!(subs.len(), 3);
        assert_eq!(subs[0], Subnet { key: 1, net: 1, x0: 0, x1: 1 });
        assert_eq!(subs[2], Subnet { key: 3, net: 1, x0: 2, x1: 3 });
    }

    #[test]
    fn breaks_cycle_lea_cannot() {
        // 1 above 2 in column 1, 2 above 1 in column 3; net 1 has an
        // internal pin at column 2, so the dogleg split breaks the cycle.
        let spec = ChannelSpec::new(vec![0, 1, 1, 2, 0], vec![0, 2, 0, 1, 0]).unwrap();
        assert!(crate::lea::route(&spec).is_err(), "LEA must fail on the cycle");
        let sol = route(&spec).expect("dogleg breaks the cycle");
        let (problem, db) = sol.layout.realize(&spec).unwrap();
        let report = verify(&problem, &db);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn two_pin_cycle_still_fatal() {
        let spec = ChannelSpec::new(vec![1, 2], vec![2, 1]).unwrap();
        assert!(matches!(route(&spec), Err(RouteError::VerticalCycle { .. })));
    }

    #[test]
    fn dogleg_verifies_on_multi_pin_example() {
        // Constraints always point downward (net 1 over 2 over 3):
        // the sub-net graph stays acyclic.
        let spec = ChannelSpec::new(vec![1, 1, 2, 2, 0, 3], vec![2, 0, 3, 3, 1, 0]).unwrap();
        let sol = route(&spec).expect("routable");
        let (problem, db) = sol.layout.realize(&spec).unwrap();
        let report = verify(&problem, &db);
        assert!(report.is_clean(), "{report}");
        assert!(sol.tracks as u32 >= spec.density());
    }

    #[test]
    fn dogleg_never_beats_density() {
        let spec = ChannelSpec::new(vec![1, 0, 2, 0, 3, 0], vec![0, 1, 0, 2, 0, 3]).unwrap();
        let sol = route(&spec).unwrap();
        assert!(sol.tracks as u32 >= spec.density());
    }
}
