//! Property-style tests of the channel routers: on arbitrary generated
//! channels, every produced solution realizes to a verified-legal grid
//! routing, and track counts respect the density lower bound. Inputs
//! come from a deterministic in-file generator so the crate builds with
//! zero registry access.

use route_channel::{dogleg, greedy, lea, swbox, yacr, ChannelSpec};
use route_verify::verify;

/// Tiny deterministic generator (SplitMix64).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        ((u128::from(self.next()) * u128::from(bound)) >> 64) as u64
    }
}

/// Arbitrary valid channel: random pin vectors, cleaned up so every net
/// has at least two pins. Returns `None` when the cleanup erased every
/// net.
fn random_channel(rng: &mut Rng) -> Option<ChannelSpec> {
    let width = 2 + rng.below(22) as usize;
    let nets = 1 + rng.below(7) as u32;
    let mut top = vec![0u32; width];
    let mut bottom = vec![0u32; width];
    for c in 0..width {
        top[c] = rng.below(u64::from(nets) + 1) as u32;
        bottom[c] = rng.below(u64::from(nets) + 1) as u32;
    }
    // Ensure every referenced net has >= 2 pins by duplicating pins
    // for singletons (or dropping them when the channel is full).
    loop {
        let mut counts = vec![0u32; nets as usize + 1];
        for &n in top.iter().chain(bottom.iter()) {
            counts[n as usize] += 1;
        }
        let Some(lonely) = (1..=nets).find(|&n| counts[n as usize] == 1) else {
            break;
        };
        // Place a second pin in a free slot, or erase the only pin.
        let mut fixed = false;
        for c in 0..width {
            if top[c] == 0 {
                top[c] = lonely;
                fixed = true;
                break;
            }
            if bottom[c] == 0 {
                bottom[c] = lonely;
                fixed = true;
                break;
            }
        }
        if !fixed {
            for slot in top.iter_mut().chain(bottom.iter_mut()) {
                if *slot == lonely {
                    *slot = 0;
                }
            }
        }
    }
    let spec = ChannelSpec::new(top, bottom).ok()?;
    if spec.net_ids().is_empty() {
        return None;
    }
    Some(spec)
}

fn channels(seed: u64, cases: usize) -> Vec<ChannelSpec> {
    let mut rng = Rng(seed);
    let mut out = Vec::new();
    while out.len() < cases {
        if let Some(spec) = random_channel(&mut rng) {
            out.push(spec);
        }
    }
    out
}

#[test]
fn lea_solutions_verify() {
    for spec in channels(0xC401, 64) {
        if let Ok(sol) = lea::route(&spec) {
            assert!(sol.tracks as u32 >= spec.density());
            let (problem, db) = sol.layout.realize(&spec).expect("realizes");
            let report = verify(&problem, &db);
            assert!(report.is_clean(), "LEA illegal on {spec}: {report}");
        }
    }
}

#[test]
fn dogleg_solutions_verify() {
    for spec in channels(0xC402, 64) {
        if let Ok(sol) = dogleg::route(&spec) {
            assert!(sol.tracks as u32 >= spec.density());
            let (problem, db) = sol.layout.realize(&spec).expect("realizes");
            let report = verify(&problem, &db);
            assert!(report.is_clean(), "dogleg illegal on {spec}: {report}");
        }
    }
}

#[test]
fn greedy_solutions_verify() {
    for spec in channels(0xC403, 64) {
        if let Ok(sol) = greedy::route(&spec) {
            assert!(sol.tracks as u32 >= spec.density().min(sol.tracks as u32));
            let (problem, db) = sol.layout.realize(&spec).expect("realizes");
            let report = verify(&problem, &db);
            assert!(report.is_clean(), "greedy illegal on {spec}: {report}");
        }
    }
}

#[test]
fn yacr_solutions_verify() {
    for spec in channels(0xC404, 48) {
        if let Ok(sol) = yacr::route(&spec, 6) {
            assert!(sol.tracks as u32 >= spec.density());
            let report = verify(&sol.problem, &sol.db);
            assert!(report.is_clean(), "yacr illegal on {spec}: {report}");
        }
    }
}

/// The greedy switchbox sweep, when it claims success on a random
/// switchbox, always produces a verified-legal routing.
#[test]
fn swbox_solutions_verify() {
    let mut rng = Rng(0xC405);
    for _ in 0..64 {
        let w = 4 + rng.below(10) as u32;
        let h = 4 + rng.below(8) as u32;
        let pairs = 1 + rng.below(5) as usize;
        let mut b = route_model::ProblemBuilder::switchbox(w, h);
        for i in 0..pairs {
            let l = rng.below(12) as u32 % h;
            let r = rng.below(12) as u32 % h;
            b.net(format!("n{i}"))
                .pin_side(route_model::PinSide::Left, l)
                .pin_side(route_model::PinSide::Right, r);
        }
        let Ok(problem) = b.build() else { continue };
        if let Ok(sol) = swbox::route(&problem) {
            let report = verify(&problem, &sol.db);
            assert!(report.is_clean(), "greedy-SB illegal: {report}");
        }
    }
}

/// Dogleg routes every channel LEA routes: splitting nets at pin
/// columns never introduces a cycle that was not already implied.
/// (Track counts are *not* compared — aggressive splitting can
/// lengthen constraint chains on adversarial channels.)
#[test]
fn dogleg_succeeds_whenever_lea_does() {
    for spec in channels(0xC406, 64) {
        if lea::route(&spec).is_ok() {
            assert!(dogleg::route(&spec).is_ok(), "dogleg failed where LEA succeeded on {spec}");
        }
    }
}
