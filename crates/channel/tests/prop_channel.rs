//! Property-based tests of the channel routers: on arbitrary generated
//! channels, every produced solution realizes to a verified-legal grid
//! routing, and track counts respect the density lower bound.

use proptest::prelude::*;

use route_channel::{dogleg, greedy, lea, swbox, yacr, ChannelSpec};
use route_verify::verify;

/// Arbitrary valid channel: random pin vectors, cleaned up so every net
/// has at least two pins.
fn arb_channel() -> impl Strategy<Value = ChannelSpec> {
    (2usize..24, 1u32..8, any::<u64>()).prop_map(|(width, nets, seed)| {
        // A tiny deterministic LCG keeps this independent of `rand`.
        let mut state = seed | 1;
        let mut next = move |m: u32| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as u32) % m
        };
        let mut top = vec![0u32; width];
        let mut bottom = vec![0u32; width];
        for c in 0..width {
            top[c] = next(nets + 1);
            bottom[c] = next(nets + 1);
        }
        // Ensure every referenced net has >= 2 pins by duplicating pins
        // for singletons (or dropping them when the channel is full).
        loop {
            let mut counts = vec![0u32; nets as usize + 1];
            for &n in top.iter().chain(bottom.iter()) {
                counts[n as usize] += 1;
            }
            let Some(lonely) = (1..=nets).find(|&n| counts[n as usize] == 1) else {
                break;
            };
            // Place a second pin in a free slot, or erase the only pin.
            let mut fixed = false;
            for c in 0..width {
                if top[c] == 0 {
                    top[c] = lonely;
                    fixed = true;
                    break;
                }
                if bottom[c] == 0 {
                    bottom[c] = lonely;
                    fixed = true;
                    break;
                }
            }
            if !fixed {
                for slot in top.iter_mut().chain(bottom.iter_mut()) {
                    if *slot == lonely {
                        *slot = 0;
                    }
                }
            }
        }
        ChannelSpec::new(top, bottom)
    })
    .prop_filter_map("spec must have nets", |r| r.ok())
    .prop_filter("non-empty net list", |s| !s.net_ids().is_empty())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lea_solutions_verify(spec in arb_channel()) {
        if let Ok(sol) = lea::route(&spec) {
            prop_assert!(sol.tracks as u32 >= spec.density());
            let (problem, db) = sol.layout.realize(&spec).expect("realizes");
            let report = verify(&problem, &db);
            prop_assert!(report.is_clean(), "LEA illegal on {spec}: {report}");
        }
    }

    #[test]
    fn dogleg_solutions_verify(spec in arb_channel()) {
        if let Ok(sol) = dogleg::route(&spec) {
            prop_assert!(sol.tracks as u32 >= spec.density());
            let (problem, db) = sol.layout.realize(&spec).expect("realizes");
            let report = verify(&problem, &db);
            prop_assert!(report.is_clean(), "dogleg illegal on {spec}: {report}");
        }
    }

    #[test]
    fn greedy_solutions_verify(spec in arb_channel()) {
        if let Ok(sol) = greedy::route(&spec) {
            prop_assert!(sol.tracks as u32 >= spec.density().min(sol.tracks as u32));
            let (problem, db) = sol.layout.realize(&spec).expect("realizes");
            let report = verify(&problem, &db);
            prop_assert!(report.is_clean(), "greedy illegal on {spec}: {report}");
        }
    }

    #[test]
    fn yacr_solutions_verify(spec in arb_channel()) {
        if let Ok(sol) = yacr::route(&spec, 6) {
            prop_assert!(sol.tracks as u32 >= spec.density());
            let report = verify(&sol.problem, &sol.db);
            prop_assert!(report.is_clean(), "yacr illegal on {spec}: {report}");
        }
    }

    /// The greedy switchbox sweep, when it claims success on a random
    /// switchbox, always produces a verified-legal routing.
    #[test]
    fn swbox_solutions_verify(
        w in 4u32..14,
        h in 4u32..12,
        pin_rows in prop::collection::vec((0u32..12, 0u32..12), 1..6),
    ) {
        let mut b = route_model::ProblemBuilder::switchbox(w, h);
        for (i, (l, r)) in pin_rows.iter().enumerate() {
            b.net(format!("n{i}"))
                .pin_side(route_model::PinSide::Left, l % h)
                .pin_side(route_model::PinSide::Right, r % h);
        }
        let Ok(problem) = b.build() else { return Ok(()) };
        if let Ok(sol) = swbox::route(&problem) {
            let report = verify(&problem, &sol.db);
            prop_assert!(report.is_clean(), "greedy-SB illegal: {report}");
        }
    }

    /// Dogleg routes every channel LEA routes: splitting nets at pin
    /// columns never introduces a cycle that was not already implied.
    /// (Track counts are *not* compared — aggressive splitting can
    /// lengthen constraint chains on adversarial channels.)
    #[test]
    fn dogleg_succeeds_whenever_lea_does(spec in arb_channel()) {
        if lea::route(&spec).is_ok() {
            prop_assert!(
                dogleg::route(&spec).is_ok(),
                "dogleg failed where LEA succeeded on {spec}"
            );
        }
    }
}
