//! JSON round-trip tests of the channel types (`serde` feature).

#![cfg(feature = "serde")]

use route_channel::{ChannelLayout, ChannelSpec, HSeg, VEnd, VSeg};

#[test]
fn channel_spec_round_trips_and_validates() {
    let spec = ChannelSpec::new(vec![1, 0, 2, 2], vec![0, 1, 2, 0]).expect("valid");
    let json = serde_json::to_string(&spec).expect("serializes");
    let back: ChannelSpec = serde_json::from_str(&json).expect("deserializes");
    assert_eq!(back, spec);

    // Invalid wire data is rejected with the spec's own validation.
    let mismatched = r#"{"top":[1,1],"bottom":[1]}"#;
    let result: Result<ChannelSpec, _> = serde_json::from_str(mismatched);
    assert!(result.is_err(), "length mismatch must not deserialize");
    let single_pin = r#"{"top":[1,2,0],"bottom":[1,0,0]}"#;
    let result: Result<ChannelSpec, _> = serde_json::from_str(single_pin);
    assert!(result.is_err(), "single-pin net must not deserialize");
}

#[test]
fn layout_round_trips() {
    let layout = ChannelLayout {
        tracks: 2,
        hsegs: vec![HSeg { net: 1, track: 0, x0: 0, x1: 3 }],
        vsegs: vec![VSeg { net: 1, col: 0, a: VEnd::Top, b: VEnd::Track(0) }],
        extra_columns: 1,
    };
    let json = serde_json::to_string(&layout).expect("serializes");
    let back: ChannelLayout = serde_json::from_str(&json).expect("deserializes");
    assert_eq!(back, layout);
}
