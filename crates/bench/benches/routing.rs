//! Criterion benchmarks, one group per experiment:
//!
//! * `channels`   — T1: each router on a mid-size suite channel.
//! * `switchbox`  — T2: sequential vs rip-up/reroute on the
//!   Burstein-class box.
//! * `completion` — F1: the four ablation configurations on one
//!   congested switchbox.
//! * `scaling`    — F2: rip-up/reroute runtime vs problem size.
//! * `obstacles`  — T3: obstructed-region routing.

//!
//! The Criterion harness lives behind the **non-default** `criterion`
//! feature so the default workspace builds with zero registry access.
//! Enabling the feature also requires restoring the `criterion`
//! dev-dependency (network access needed); without it this target
//! compiles to a no-op stub.

#[cfg(feature = "criterion")]
mod criterion_benches {
    use criterion::{criterion_group, BenchmarkId, Criterion};
    use std::hint::black_box;

    use mighty::{MightyRouter, RouterConfig};
    use route_benchdata::gen::{ChannelGen, ObstructedGen, SwitchboxGen};
    use route_benchdata::{burstein_class, deutsch_class};
    use route_channel::{dogleg, greedy, lea, yacr};
    use route_maze::{sequential, CostModel};

    fn bench_channels(c: &mut Criterion) {
        let spec =
            ChannelGen { width: 40, nets: 16, extra_pin_pct: 30, span_window: 13, seed: 900 }
                .build();
        let mut group = c.benchmark_group("channels");
        group.bench_function("lea", |b| b.iter(|| black_box(lea::route(&spec))));
        group.bench_function("dogleg", |b| b.iter(|| black_box(dogleg::route(&spec))));
        group.bench_function("greedy", |b| b.iter(|| black_box(greedy::route(&spec))));
        group.bench_function("yacr", |b| b.iter(|| black_box(yacr::route(&spec, 6))));
        let tracks = (spec.density() + 2) as usize;
        let problem = spec.to_problem(tracks);
        let router = MightyRouter::new(RouterConfig::default());
        group.bench_function("ripup", |b| b.iter(|| black_box(router.route(&problem))));
        group.finish();

        // The headline hard channel, routed once per iteration by the
        // fastest classical router as a macro-benchmark.
        let hard = deutsch_class();
        c.bench_function("deutsch_class_greedy", |b| b.iter(|| black_box(greedy::route(&hard))));
    }

    fn bench_switchbox(c: &mut Criterion) {
        let problem = burstein_class();
        let mut group = c.benchmark_group("switchbox");
        group.sample_size(20);
        group.bench_function("sequential", |b| {
            b.iter(|| black_box(sequential::route_all(&problem, CostModel::default())))
        });
        let router = MightyRouter::new(RouterConfig::default());
        group.bench_function("ripup", |b| b.iter(|| black_box(router.route(&problem))));
        group.finish();
    }

    fn bench_completion(c: &mut Criterion) {
        let problem = SwitchboxGen { width: 16, height: 16, nets: 20, seed: 42 }.build();
        let mut group = c.benchmark_group("completion");
        group.sample_size(20);
        for (name, cfg) in [
            ("none", RouterConfig::no_modification()),
            ("weak-only", RouterConfig { strong: false, ..RouterConfig::default() }),
            ("strong-only", RouterConfig { weak: false, ..RouterConfig::default() }),
            ("weak+strong", RouterConfig::default()),
        ] {
            let router = MightyRouter::new(cfg);
            group.bench_function(name, |b| b.iter(|| black_box(router.route(&problem))));
        }
        group.finish();
    }

    fn bench_scaling(c: &mut Criterion) {
        let mut group = c.benchmark_group("scaling");
        group.sample_size(10);
        for (side, nets) in [(8u32, 6u32), (16, 14), (32, 30)] {
            let problem = SwitchboxGen { width: side, height: side, nets, seed: 7 }.build();
            let router = MightyRouter::new(RouterConfig::default());
            group.bench_with_input(BenchmarkId::from_parameter(side), &problem, |b, p| {
                b.iter(|| black_box(router.route(p)))
            });
        }
        group.finish();
    }

    fn bench_obstacles(c: &mut Criterion) {
        let problem =
            ObstructedGen { width: 20, height: 20, nets: 12, obstacle_pct: 15, seed: 3 }.build();
        let mut group = c.benchmark_group("obstacles");
        group.sample_size(20);
        group.bench_function("sequential", |b| {
            b.iter(|| black_box(sequential::route_all(&problem, CostModel::default())))
        });
        let router = MightyRouter::new(RouterConfig::default());
        group.bench_function("ripup", |b| b.iter(|| black_box(router.route(&problem))));
        group.finish();
    }

    fn bench_cleanup(c: &mut Criterion) {
        use route_opt::{cleanup, OptimizeConfig};
        let problem = burstein_class();
        let routed = MightyRouter::new(RouterConfig::default()).route(&problem).into_db();
        let mut group = c.benchmark_group("cleanup");
        group.sample_size(20);
        group.bench_function("burstein", |b| {
            b.iter(|| {
                let mut db = routed.clone();
                black_box(cleanup(&problem, &mut db, &OptimizeConfig::default()))
            })
        });
        group.finish();
    }

    fn bench_layers(c: &mut Criterion) {
        let spec =
            ChannelGen { width: 40, nets: 16, extra_pin_pct: 30, span_window: 13, seed: 900 }
                .build();
        let mut group = c.benchmark_group("layers");
        group.sample_size(10);
        for layers in [2u8, 3] {
            let tracks = (spec.density() + 2) as usize;
            let problem = spec.to_problem_with_layers(tracks, layers);
            let router = MightyRouter::new(RouterConfig::default());
            group.bench_with_input(BenchmarkId::from_parameter(layers), &problem, |b, p| {
                b.iter(|| black_box(router.route(p)))
            });
        }
        group.finish();
    }

    fn bench_hierarchy(c: &mut Criterion) {
        use route_global::{route_hierarchical, GlobalConfig};
        let problem = SwitchboxGen { width: 96, height: 96, nets: 70, seed: 1 }.build();
        let mut group = c.benchmark_group("hierarchy");
        group.sample_size(10);
        let router = MightyRouter::new(RouterConfig::default());
        group.bench_function("flat", |b| b.iter(|| black_box(router.route(&problem))));
        group.bench_function("tiled", |b| {
            b.iter(|| black_box(route_hierarchical(&problem, &GlobalConfig::default())))
        });
        group.finish();
    }

    criterion_group!(
        benches,
        bench_channels,
        bench_switchbox,
        bench_completion,
        bench_scaling,
        bench_obstacles,
        bench_cleanup,
        bench_layers,
        bench_hierarchy
    );
}

#[cfg(feature = "criterion")]
fn main() {
    criterion_benches::benches();
}

#[cfg(not(feature = "criterion"))]
fn main() {
    eprintln!(
        "criterion benches are feature-gated; run scripts/ci.sh or the exp_* binaries instead"
    );
}
