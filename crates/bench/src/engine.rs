//! Throughput scaling of the batch engine: the F2 companion experiment.
//!
//! The driver replicates the channel suite into a fixed-size batch of
//! grid problems, routes it through
//! [`mighty::engine::RouteEngine`] at increasing thread
//! counts, and reports instances/second per count. Checksums of every
//! result are compared against the single-thread run, so the scaling
//! table doubles as a determinism check.

use std::time::Instant;

use mighty::engine::{EngineConfig, RouteEngine};
use mighty::{MightyRouter, RouterConfig};
use route_benchdata::suite::channel_suite;
use route_model::{Problem, RouteError};

use crate::json::Json;

/// Tracks of slack above density each suite channel gets, so the batch
/// measures routing throughput rather than infeasibility handling.
const TRACK_SLACK: usize = 3;

/// The channel suite replicated (cyclically) into a `count`-instance
/// batch of grid problems. Deterministic.
pub fn replicated_channel_batch(count: usize) -> Vec<Problem> {
    let suite = channel_suite();
    (0..count)
        .map(|i| {
            let (_, spec) = &suite[i % suite.len()];
            spec.to_problem(spec.density() as usize + TRACK_SLACK)
        })
        .collect()
}

/// One measured point of the engine scaling sweep.
#[derive(Debug, Clone, Copy)]
pub struct EnginePoint {
    /// Worker threads used.
    pub jobs: usize,
    /// Wall-clock time for the whole batch, in milliseconds.
    pub batch_ms: u64,
    /// Instances routed per second of wall-clock time.
    pub throughput: f64,
    /// Speedup over the single-thread point.
    pub speedup: f64,
    /// Instances with every net connected.
    pub complete: usize,
}

/// Routes `problems` at each thread count in `thread_counts` and
/// reports one [`EnginePoint`] per count.
///
/// # Panics
///
/// Panics if any run disagrees with the single-thread run's per-instance
/// checksums — the engine's determinism contract is load-bearing for
/// every table built on it.
pub fn scaling_sweep(problems: &[Problem], thread_counts: &[usize]) -> Vec<EnginePoint> {
    let router = MightyRouter::new(RouterConfig::default());
    let mut points = Vec::new();
    let mut reference: Option<Vec<u64>> = None;
    let mut base_ms = 0u64;
    for &jobs in thread_counts {
        let engine = RouteEngine::new(EngineConfig { jobs, ..EngineConfig::default() });
        let started = Instant::now();
        let out = engine.route_batch(&router, problems);
        let batch_ms = started.elapsed().as_millis() as u64;
        let checksums: Vec<u64> = out
            .results
            .iter()
            .map(|r| match r {
                Ok(routing) => routing.db.checksum(),
                Err(RouteError::Panicked { message }) => {
                    panic!("engine instance panicked: {message}")
                }
                Err(e) => panic!("engine instance errored: {e}"),
            })
            .collect();
        match &reference {
            None => {
                reference = Some(checksums);
                base_ms = batch_ms.max(1);
            }
            Some(expected) => {
                assert_eq!(expected, &checksums, "{jobs}-thread run diverged");
            }
        }
        points.push(EnginePoint {
            jobs,
            batch_ms,
            throughput: problems.len() as f64 / (batch_ms.max(1) as f64 / 1000.0),
            speedup: base_ms as f64 / batch_ms.max(1) as f64,
            complete: out.stats.complete,
        });
    }
    points
}

/// Serializes a sweep as the `BENCH_engine.json` artifact: batch shape,
/// hardware parallelism (the ceiling on any measured speedup) and one
/// record per thread count.
pub fn sweep_json(suite: &str, instances: usize, points: &[EnginePoint]) -> Json {
    let hardware = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    Json::obj([
        ("experiment", Json::str("engine-throughput-scaling")),
        ("suite", Json::str(suite)),
        ("instances", Json::from(instances)),
        ("hardware_threads", Json::from(hardware)),
        (
            "points",
            Json::arr(points.iter().map(|p| {
                Json::obj([
                    ("jobs", Json::from(p.jobs)),
                    ("batch_ms", Json::from(p.batch_ms)),
                    ("throughput_per_sec", Json::from(p.throughput)),
                    ("speedup", Json::from(p.speedup)),
                    ("complete", Json::from(p.complete)),
                ])
            })),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replicated_batch_cycles_the_suite() {
        let batch = replicated_channel_batch(12);
        assert_eq!(batch.len(), 12);
        let suite_len = channel_suite().len();
        // Instance i and i + suite_len are the same channel.
        assert_eq!(batch[0].nets().len(), batch[suite_len].nets().len());
        assert_eq!(batch[0].width(), batch[suite_len].width());
    }

    #[test]
    fn sweep_measures_and_stays_deterministic() {
        let batch = replicated_channel_batch(4);
        let points = scaling_sweep(&batch, &[1, 2]);
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].jobs, 1);
        assert!((points[0].speedup - 1.0).abs() < 1e-9);
        assert!(points.iter().all(|p| p.complete == 4));
        let doc = sweep_json("channels", 4, &points).render();
        assert!(doc.contains("\"jobs\": 2"), "{doc}");
        assert!(doc.contains("hardware_threads"), "{doc}");
    }
}
