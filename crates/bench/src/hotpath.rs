//! M1 hot-path sweep: routed-nets/second of the maze-search inner loop
//! under each frontier/probe configuration.
//!
//! Three modes bracket the PR-7 hot-path redesign:
//!
//! * `heap-scalar` — binary-heap frontier, per-cell scalar occupancy
//!   probes: the pre-redesign inner loop, kept reproducible through
//!   [`ProbeKind::Scalar`].
//! * `heap-bits` — binary-heap frontier over the packed occupancy bit
//!   plane (isolates the word-probe win).
//! * `buckets-bits` — bucket-queue frontier plus bit probes: the
//!   default configuration.
//!
//! Every mode must produce **bit-identical** databases — the sweep
//! panics on any checksum divergence, so the throughput table doubles
//! as the frontier-equivalence check. Both the sequential Lee baseline
//! (`route_all_in`) and the rip-up router (`route_warm`) are measured;
//! the speed gate compares the rip-up router's `buckets-bits` and
//! `heap-scalar` rows.

use std::time::Instant;

use mighty::{MightyRouter, RouterConfig};
use route_maze::sequential::route_all_in;
use route_maze::{CostModel, FrontierKind, ProbeKind, SearchArena};
use route_model::Problem;

use crate::engine::replicated_channel_batch;
use crate::json::Json;

/// One frontier/probe configuration of the sweep.
#[derive(Debug, Clone, Copy)]
pub struct HotpathMode {
    /// Stable row label (`heap-scalar`, `heap-bits`, `buckets-bits`).
    pub name: &'static str,
    /// Open-list implementation.
    pub frontier: FrontierKind,
    /// Occupancy-probe implementation.
    pub probe: ProbeKind,
}

/// The three bracketing modes, baseline first.
pub const MODES: [HotpathMode; 3] = [
    HotpathMode { name: "heap-scalar", frontier: FrontierKind::Heap, probe: ProbeKind::Scalar },
    HotpathMode { name: "heap-bits", frontier: FrontierKind::Heap, probe: ProbeKind::Bits },
    HotpathMode { name: "buckets-bits", frontier: FrontierKind::Buckets, probe: ProbeKind::Bits },
];

/// One measured row of the sweep.
#[derive(Debug, Clone)]
pub struct HotpathPoint {
    /// Router measured (`lee` or `mighty`).
    pub router: &'static str,
    /// Mode label.
    pub mode: &'static str,
    /// Wall-clock milliseconds for all repetitions of the batch.
    pub millis: f64,
    /// Successfully routed nets per second of wall-clock time.
    pub nets_per_sec: f64,
    /// Nets routed per repetition of the batch.
    pub nets_routed: usize,
    /// Instances fully completed per repetition.
    pub complete: usize,
    /// XOR of all per-instance database checksums (mode-invariant).
    pub checksum: u64,
}

/// The standard measurement batch: the channel suite replicated to
/// `instances` grid problems.
pub fn hotpath_batch(instances: usize) -> Vec<Problem> {
    replicated_channel_batch(instances)
}

fn run_lee(problems: &[Problem], mode: HotpathMode, reps: usize) -> HotpathPoint {
    let mut arena = SearchArena::with_config(mode.frontier, mode.probe);
    // Untimed warm-up pass: grows the arena to the largest grid.
    let _ = measure_lee(problems, &mut arena);
    let start = Instant::now();
    let mut tally = (0usize, 0usize, 0u64);
    for _ in 0..reps {
        tally = measure_lee(problems, &mut arena);
    }
    point("lee", mode, start.elapsed().as_secs_f64(), reps, tally)
}

fn measure_lee(problems: &[Problem], arena: &mut SearchArena) -> (usize, usize, u64) {
    let (mut nets, mut complete, mut checksum) = (0usize, 0usize, 0u64);
    for p in problems {
        let out = route_all_in(p, CostModel::default(), arena);
        nets += p.nets().len() - out.failed.len();
        complete += usize::from(out.is_complete());
        checksum ^= out.db.checksum();
    }
    (nets, complete, checksum)
}

fn run_mighty(problems: &[Problem], mode: HotpathMode, reps: usize) -> HotpathPoint {
    let router =
        MightyRouter::new(RouterConfig { frontier: mode.frontier, ..RouterConfig::default() });
    let mut arena = SearchArena::with_config(mode.frontier, mode.probe);
    let _ = measure_mighty(&router, problems, &mut arena);
    let start = Instant::now();
    let mut tally = (0usize, 0usize, 0u64);
    for _ in 0..reps {
        tally = measure_mighty(&router, problems, &mut arena);
    }
    point("mighty", mode, start.elapsed().as_secs_f64(), reps, tally)
}

fn measure_mighty(
    router: &MightyRouter,
    problems: &[Problem],
    arena: &mut SearchArena,
) -> (usize, usize, u64) {
    let (mut nets, mut complete, mut checksum) = (0usize, 0usize, 0u64);
    for p in problems {
        let out = router.route_warm(p, arena);
        nets += p.nets().len() - out.failed().len();
        complete += usize::from(out.is_complete());
        checksum ^= out.db().checksum();
    }
    (nets, complete, checksum)
}

fn point(
    router: &'static str,
    mode: HotpathMode,
    seconds: f64,
    reps: usize,
    (nets, complete, checksum): (usize, usize, u64),
) -> HotpathPoint {
    HotpathPoint {
        router,
        mode: mode.name,
        millis: seconds * 1e3,
        nets_per_sec: (nets * reps) as f64 / seconds.max(1e-9),
        nets_routed: nets,
        complete,
        checksum,
    }
}

/// Measures every mode for both routers over `reps` repetitions of the
/// batch.
///
/// # Panics
///
/// Panics when any mode's per-batch checksum diverges from the
/// baseline mode of the same router: the frontier and probe knobs are
/// defined to be bit-identical, so a divergence is a correctness bug,
/// not a measurement artifact.
pub fn hotpath_sweep(problems: &[Problem], reps: usize) -> Vec<HotpathPoint> {
    let mut points = Vec::new();
    for (label, run) in [
        ("lee", run_lee as fn(&[Problem], HotpathMode, usize) -> HotpathPoint),
        ("mighty", run_mighty),
    ] {
        let rows: Vec<HotpathPoint> = MODES.iter().map(|&m| run(problems, m, reps)).collect();
        for row in &rows[1..] {
            assert_eq!(
                row.checksum, rows[0].checksum,
                "{label} mode {} diverged from {}: the modes must be bit-identical",
                row.mode, rows[0].mode,
            );
        }
        points.extend(rows);
    }
    points
}

/// Throughput of the true pre-redesign binary, measured once from the
/// PR-7 base commit with a timing loop identical to this sweep's.
///
/// The in-binary `heap-scalar` mode reproduces the pre-redesign *inner
/// loop* (binary heap, per-cell occupant probes, unmemoized heuristic)
/// but still benefits from shared-path work that landed in the same PR
/// (hashless connectivity BFS, spatial trace index), so it overstates
/// the baseline. These rows are the honest end-to-end reference: the
/// shipped pre-PR binary on the identical 64-instance channel batch.
/// Rates are hardware-bound (measured on the benchmarking box that
/// produced every `BENCH_*.json` in this repository); the checksums are
/// not — any full run can verify it still produces the pre-PR databases
/// bit-for-bit.
#[derive(Debug, Clone, Copy)]
pub struct PrePrBaseline {
    /// Router measured (`lee` or `mighty`).
    pub router: &'static str,
    /// Routed nets per second of the pre-PR binary, full mode.
    pub nets_per_sec: f64,
    /// XOR of per-instance `RouteDb::checksum()` over the full batch.
    pub checksum: u64,
}

/// Base commit the pre-PR rows were measured from.
pub const PRE_PR_COMMIT: &str = "3ec27b6";
/// Batch size the pre-PR rows (and their checksums) correspond to.
pub const PRE_PR_INSTANCES: usize = 64;
/// The measured pre-PR rows (`exp_m1_baseline` in a worktree at
/// [`PRE_PR_COMMIT`]; 64 instances x 5 reps, untimed warm-up pass).
pub const PRE_PR: [PrePrBaseline; 2] = [
    PrePrBaseline { router: "lee", nets_per_sec: 7617.0, checksum: 0x612bfddb6720dccd },
    PrePrBaseline { router: "mighty", nets_per_sec: 1499.0, checksum: 0x5885ea8bf97260bd },
];

/// Speedup of a router's default `buckets-bits` mode over the recorded
/// pre-PR binary, plus whether this run's checksum reproduces the
/// pre-PR database bit-for-bit. Checksum verification requires the
/// full [`PRE_PR_INSTANCES`] batch; `None` otherwise.
pub fn pre_pr_comparison(
    points: &[HotpathPoint],
    instances: usize,
    router: &str,
) -> Option<(f64, bool)> {
    if instances != PRE_PR_INSTANCES {
        return None;
    }
    let base = PRE_PR.iter().find(|b| b.router == router)?;
    let now = points.iter().find(|p| p.router == router && p.mode == "buckets-bits")?;
    Some((now.nets_per_sec / base.nets_per_sec, now.checksum == base.checksum))
}

/// The measured speedup of the rip-up router's default mode over the
/// in-binary baseline mode (`buckets-bits` vs `heap-scalar` nets/sec).
pub fn mighty_speedup(points: &[HotpathPoint]) -> f64 {
    let rate = |mode: &str| {
        points
            .iter()
            .find(|p| p.router == "mighty" && p.mode == mode)
            .map(|p| p.nets_per_sec)
            .unwrap_or(0.0)
    };
    let base = rate("heap-scalar");
    if base > 0.0 {
        rate("buckets-bits") / base
    } else {
        0.0
    }
}

/// Serializes the sweep as the `BENCH_maze.json` artifact.
pub fn hotpath_json(instances: usize, reps: usize, points: &[HotpathPoint]) -> Json {
    Json::obj([
        ("experiment", Json::str("maze-hotpath-throughput")),
        ("suite", Json::str("channels")),
        ("instances", Json::from(instances)),
        ("reps", Json::from(reps)),
        ("mighty_speedup", Json::from(mighty_speedup(points))),
        (
            "pre_pr_baseline",
            Json::obj([
                ("commit", Json::str(PRE_PR_COMMIT)),
                ("instances", Json::from(PRE_PR_INSTANCES)),
                (
                    "rows",
                    Json::arr(PRE_PR.iter().map(|b| {
                        let cmp = pre_pr_comparison(points, instances, b.router);
                        Json::obj([
                            ("router", Json::str(b.router)),
                            ("nets_per_sec", Json::from(b.nets_per_sec)),
                            ("checksum", Json::str(format!("{:016x}", b.checksum))),
                            ("speedup", cmp.map_or(Json::Null, |(s, _)| Json::from(s))),
                            ("checksum_match", cmp.map_or(Json::Null, |(_, m)| Json::from(m))),
                        ])
                    })),
                ),
            ]),
        ),
        (
            "points",
            Json::arr(points.iter().map(|p| {
                Json::obj([
                    ("router", Json::str(p.router)),
                    ("mode", Json::str(p.mode)),
                    ("millis", Json::from(p.millis)),
                    ("nets_per_sec", Json::from(p.nets_per_sec)),
                    ("nets_routed", Json::from(p.nets_routed)),
                    ("complete", Json::from(p.complete)),
                    ("checksum", Json::str(format!("{:016x}", p.checksum))),
                ])
            })),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modes_cover_both_frontiers_and_probes() {
        assert_eq!(MODES[0].name, "heap-scalar");
        assert!(MODES.iter().any(|m| m.frontier == FrontierKind::Buckets));
        assert!(MODES.iter().any(|m| m.probe == ProbeKind::Scalar));
    }

    #[test]
    fn sweep_is_checksum_coherent_on_a_small_batch() {
        let problems = hotpath_batch(2);
        let points = hotpath_sweep(&problems, 1);
        assert_eq!(points.len(), 2 * MODES.len());
        assert!(points.iter().all(|p| p.nets_routed > 0));
        assert!(mighty_speedup(&points) > 0.0);
    }
}
