//! Experiment T1: tracks vs density for every channel router on the
//! channel suite (including the Deutsch-class difficult channel).
//!
//! Regenerates the "channel results" table of `EXPERIMENTS.md`:
//!
//! ```text
//! cargo run --release -p route-bench --bin exp_t1_channels
//! ```

use route_bench::channels::evaluate;
use route_bench::table;
use route_benchdata::suite::channel_suite;

fn main() {
    println!("T1: channel routing — tracks used (density is the lower bound)\n");
    let mut rows = Vec::new();
    for (name, spec) in channel_suite() {
        eprintln!("routing {name} ...");
        let row = evaluate(name, &spec);
        rows.push(vec![
            row.name.clone(),
            row.width.to_string(),
            row.nets.to_string(),
            row.density.to_string(),
            row.lea.cell(),
            row.dogleg.cell(),
            row.greedy.cell(),
            row.yacr.cell(),
            row.mighty.cell(),
        ]);
    }
    let header =
        ["channel", "cols", "nets", "density", "LEA", "dogleg", "greedy", "YACR-style", "rip-up"];
    println!("{}", table::render(&header, &rows));
    println!("greedy cells show `tracks(+Nc)` when N extension columns were needed.");
}
