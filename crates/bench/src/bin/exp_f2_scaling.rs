//! Experiment F2: runtime and search-effort scaling of the
//! rip-up/reroute router with problem size, plus batch-engine
//! throughput scaling with thread count.
//!
//! ```text
//! cargo run --release -p route-bench --bin exp_f2_scaling
//! ```
//!
//! Writes the machine-readable engine scaling record to
//! `BENCH_engine.json` in the working directory.

use route_bench::engine::{replicated_channel_batch, scaling_sweep, sweep_json};
use route_bench::sweeps::scaling_point;
use route_bench::table;

const POINTS: [(u32, u32); 6] = [(8, 6), (12, 10), (16, 14), (24, 22), (32, 30), (48, 44)];
const SEEDS: u64 = 5;

const BATCH_INSTANCES: usize = 64;
const THREADS: [usize; 4] = [1, 2, 4, 8];

fn main() {
    println!("F2: rip-up/reroute scaling — mean over {SEEDS} seeds per size\n");
    let mut rows = Vec::new();
    for (side, nets) in POINTS {
        eprintln!("side = {side} ...");
        let mut millis = 0.0;
        let mut expanded = 0u64;
        let mut complete = 0u32;
        for seed in 0..SEEDS {
            let p = scaling_point(side, nets, seed);
            millis += p.millis;
            expanded += p.expanded;
            complete += u32::from(p.complete);
        }
        rows.push(vec![
            format!("{side}x{side}"),
            nets.to_string(),
            format!("{:.2}", millis / SEEDS as f64),
            (expanded / SEEDS).to_string(),
            format!("{complete}/{SEEDS}"),
        ]);
    }
    let header = ["grid", "nets", "mean ms", "mean expanded", "complete"];
    println!("{}", table::render(&header, &rows));
    println!("expanded = A* nodes settled; growth should track grid area x nets.");

    let hardware = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!(
        "\nF2b: batch-engine throughput — {BATCH_INSTANCES} channel-suite instances, \
         {hardware} hardware thread(s)\n"
    );
    let batch = replicated_channel_batch(BATCH_INSTANCES);
    let points = scaling_sweep(&batch, &THREADS);
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.jobs.to_string(),
                p.batch_ms.to_string(),
                format!("{:.1}", p.throughput),
                format!("{:.2}x", p.speedup),
                format!("{}/{BATCH_INSTANCES}", p.complete),
            ]
        })
        .collect();
    let header = ["jobs", "batch ms", "inst/sec", "speedup", "complete"];
    println!("{}", table::render(&header, &rows));
    println!("speedup is bounded by the {hardware} hardware thread(s) of this machine;");
    println!("every run is checksum-verified against the single-thread run.");

    let doc = sweep_json("channels", BATCH_INSTANCES, &points);
    let path = "BENCH_engine.json";
    std::fs::write(path, doc.render()).expect("writing BENCH_engine.json");
    println!("wrote {path}");
}
