//! Experiment F2: runtime and search-effort scaling of the
//! rip-up/reroute router with problem size.
//!
//! ```text
//! cargo run --release -p route-bench --bin exp_f2_scaling
//! ```

use route_bench::sweeps::scaling_point;
use route_bench::table;

const POINTS: [(u32, u32); 6] = [(8, 6), (12, 10), (16, 14), (24, 22), (32, 30), (48, 44)];
const SEEDS: u64 = 5;

fn main() {
    println!("F2: rip-up/reroute scaling — mean over {SEEDS} seeds per size\n");
    let mut rows = Vec::new();
    for (side, nets) in POINTS {
        eprintln!("side = {side} ...");
        let mut millis = 0.0;
        let mut expanded = 0u64;
        let mut complete = 0u32;
        for seed in 0..SEEDS {
            let p = scaling_point(side, nets, seed);
            millis += p.millis;
            expanded += p.expanded;
            complete += u32::from(p.complete);
        }
        rows.push(vec![
            format!("{side}x{side}"),
            nets.to_string(),
            format!("{:.2}", millis / SEEDS as f64),
            (expanded / SEEDS).to_string(),
            format!("{complete}/{SEEDS}"),
        ]);
    }
    let header = ["grid", "nets", "mean ms", "mean expanded", "complete"];
    println!("{}", table::render(&header, &rows));
    println!("expanded = A* nodes settled; growth should track grid area x nets.");
}
