//! Experiment F1: completion rate vs congestion for the four ablation
//! configurations of the modification machinery, plus (with `--ablate`)
//! the modification-work counters.
//!
//! ```text
//! cargo run --release -p route-bench --bin exp_f1_completion [--ablate]
//! ```

use route_bench::sweeps::{completion_point, ABLATIONS};
use route_bench::table;

const SIDE: u32 = 16;
const SEEDS: u64 = 10;
const NET_COUNTS: [u32; 6] = [8, 12, 16, 20, 24, 28];

fn main() {
    let ablate = std::env::args().any(|a| a == "--ablate");
    println!(
        "F1: completion rate (% of nets) on random {SIDE}x{SIDE} switchboxes, \
         {SEEDS} seeds per point\n"
    );
    let mut rows = Vec::new();
    let mut work_rows = Vec::new();
    for nets in NET_COUNTS {
        eprintln!("nets = {nets} ...");
        let mut cells = vec![nets.to_string()];
        for (name, cfg) in ABLATIONS {
            let point = completion_point(SIDE, nets, SEEDS, cfg());
            cells.push(format!("{:5.1}", point.completion_pct));
            if ablate && name == "weak+strong" {
                let s = point.stats;
                work_rows.push(vec![
                    nets.to_string(),
                    s.hard_routes.to_string(),
                    s.soft_routes.to_string(),
                    s.weak_pushes.to_string(),
                    s.rips.to_string(),
                    s.reroutes.to_string(),
                ]);
            }
        }
        rows.push(cells);
    }
    let header = ["nets", "none", "weak-only", "strong-only", "weak+strong"];
    println!("{}", table::render(&header, &rows));

    if ablate {
        println!("\nA1: modification work of the full configuration (sums over seeds)\n");
        let header = ["nets", "hard", "soft", "weak-push", "rips", "reroutes"];
        println!("{}", table::render(&header, &work_rows));
    }
}
