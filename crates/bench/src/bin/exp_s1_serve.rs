//! Experiment S1: sustained throughput and tail latency of the routing
//! service (`vroute serve`'s warm worker pool) with worker count.
//!
//! ```text
//! cargo run --release -p route-bench --bin exp_s1_serve
//! ```
//!
//! Writes the machine-readable service record to `BENCH_serve.json`
//! in the working directory.

use route_bench::engine::replicated_channel_batch;
use route_bench::serve::{serve_sweep, serve_sweep_json};
use route_bench::table;

const REQUESTS: usize = 128;
const WORKERS: [usize; 4] = [1, 2, 4, 8];

fn main() {
    let hardware = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!(
        "S1: routing-service throughput — {REQUESTS} channel-suite requests, \
         {hardware} hardware thread(s)\n"
    );
    let problems = replicated_channel_batch(REQUESTS);
    let points = serve_sweep(&problems, &WORKERS);

    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.workers.to_string(),
                p.wall_ms.to_string(),
                format!("{:.1}", p.requests_per_sec),
                p.p50_ms.to_string(),
                p.p99_ms.to_string(),
                p.max_ms.to_string(),
                format!("{:.1}", p.mean_queued_ms),
                format!("{}/{REQUESTS}", p.complete),
            ]
        })
        .collect();
    let header =
        ["workers", "wall ms", "req/sec", "p50 ms", "p99 ms", "max ms", "queued ms", "complete"];
    println!("{}", table::render(&header, &rows));
    println!("latency = admission to reply (queue wait + routing), exact nearest-rank quantiles;");
    println!("every run is checksum-verified against direct cold routing.");

    let doc = serve_sweep_json("channels", REQUESTS, &points);
    let path = "BENCH_serve.json";
    std::fs::write(path, doc.render()).expect("writing BENCH_serve.json");
    println!("wrote {path}");
}
