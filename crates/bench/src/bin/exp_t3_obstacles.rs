//! Experiment T3: routing around obstacles in irregular regions —
//! completion vs obstacle density for the baseline and the
//! rip-up/reroute router.
//!
//! ```text
//! cargo run --release -p route-bench --bin exp_t3_obstacles
//! ```

use route_bench::sweeps::obstacle_point;
use route_bench::table;

const SIDE: u32 = 20;
const NETS: u32 = 12;
const SEEDS: u64 = 10;
const OBSTACLE_PCTS: [u32; 5] = [0, 5, 10, 20, 30];

fn main() {
    println!(
        "T3: completion (% of nets) on {SIDE}x{SIDE} boxes with {NETS} nets and \
         random obstacle blocks, {SEEDS} seeds per point\n"
    );
    let mut rows = Vec::new();
    for pct in OBSTACLE_PCTS {
        eprintln!("obstacles = {pct}% ...");
        let p = obstacle_point(SIDE, NETS, pct, SEEDS);
        rows.push(vec![
            format!("{pct}%"),
            format!("{:5.1}", p.sequential_pct),
            format!("{:5.1}", p.mighty_pct),
        ]);
    }
    let header = ["obstacles", "sequential", "rip-up/reroute"];
    println!("{}", table::render(&header, &rows));
}
