//! Experiment G1: hierarchical (tile-planned) vs flat detailed routing
//! on chip-scale floorplans — completion and wall time.
//!
//! ```text
//! cargo run --release -p route-bench --bin exp_g1_hierarchy
//! ```

use std::time::Instant;

use mighty::{MightyRouter, RouterConfig};
use route_bench::table;
use route_benchdata::gen::SwitchboxGen;
use route_global::{route_hierarchical, GlobalConfig};
use route_verify::verify;

const POINTS: [(u32, u32); 4] = [(48, 30), (64, 44), (96, 70), (128, 96)];
const SEEDS: u64 = 3;

fn main() {
    println!(
        "G1: flat rip-up/reroute vs hierarchical (16-cell tiles + fallback), \
         mean over {SEEDS} seeds per size\n"
    );
    let mut rows = Vec::new();
    for (side, nets) in POINTS {
        eprintln!("side = {side} ...");
        let mut flat_ms = 0.0;
        let mut hier_ms = 0.0;
        let mut flat_failed = 0usize;
        let mut hier_failed = 0usize;
        let mut crossings = 0usize;
        for seed in 0..SEEDS {
            let problem = SwitchboxGen { width: side, height: side, nets, seed }.build();

            let start = Instant::now();
            let flat = MightyRouter::new(RouterConfig::default()).route(&problem);
            flat_ms += start.elapsed().as_secs_f64() * 1e3;
            let report = verify(&problem, flat.db());
            assert!(report.is_clean() || report.is_legal_but_incomplete(), "{report}");
            flat_failed += flat.failed().len();

            let start = Instant::now();
            let hier = route_hierarchical(&problem, &GlobalConfig::default());
            hier_ms += start.elapsed().as_secs_f64() * 1e3;
            let report = verify(&problem, hier.db());
            assert!(report.is_clean() || report.is_legal_but_incomplete(), "{report}");
            hier_failed += hier.failed().len();
            crossings += hier.stats().crossings;
        }
        let total_nets = (nets as u64 * SEEDS) as f64;
        rows.push(vec![
            format!("{side}x{side}"),
            nets.to_string(),
            format!("{:.1}", flat_ms / SEEDS as f64),
            format!("{:.1}", hier_ms / SEEDS as f64),
            format!("{:4.1}", 100.0 * (total_nets - flat_failed as f64) / total_nets),
            format!("{:4.1}", 100.0 * (total_nets - hier_failed as f64) / total_nets),
            (crossings / SEEDS as usize).to_string(),
        ]);
    }
    let header = ["grid", "nets", "flat ms", "hier ms", "flat %", "hier %", "crossings"];
    println!("{}", table::render(&header, &rows));
}
