//! Experiment A3: design-choice ablations of the rip-up/reroute router —
//! penalty escalation schedule and initial net ordering.
//!
//! ```text
//! cargo run --release -p route-bench --bin exp_a3_schedules
//! ```

use mighty::{NetOrder, PenaltyGrowth, RouterConfig};
use route_bench::sweeps::completion_point;
use route_bench::table;

const SIDE: u32 = 16;
const SEEDS: u64 = 10;
const NET_COUNTS: [u32; 3] = [16, 20, 24];

fn main() {
    println!(
        "A3a: penalty escalation schedule — completion % and rips on random \
         {SIDE}x{SIDE} switchboxes, {SEEDS} seeds per point\n"
    );
    let schedules = [("geometric", PenaltyGrowth::Geometric), ("linear", PenaltyGrowth::Linear)];
    let mut rows = Vec::new();
    for nets in NET_COUNTS {
        eprintln!("penalty sweep, nets = {nets} ...");
        let mut cells = vec![nets.to_string()];
        for (_, growth) in schedules {
            let cfg = RouterConfig { penalty_growth: growth, ..RouterConfig::default() };
            let p = completion_point(SIDE, nets, SEEDS, cfg);
            cells.push(format!("{:5.1}", p.completion_pct));
            cells.push(p.stats.rips.to_string());
        }
        rows.push(cells);
    }
    let header = ["nets", "geo %", "geo rips", "lin %", "lin rips"];
    println!("{}", table::render(&header, &rows));

    println!("\nA3b: initial net ordering — completion % on the same sweep\n");
    let orders = [
        ("short-first", NetOrder::ShortFirst),
        ("long-first", NetOrder::LongFirst),
        ("pin-count", NetOrder::PinCountDesc),
        ("congestion", NetOrder::CongestionFirst),
        ("declared", NetOrder::Declared),
    ];
    let mut rows = Vec::new();
    for nets in NET_COUNTS {
        eprintln!("order sweep, nets = {nets} ...");
        let mut cells = vec![nets.to_string()];
        for (_, order) in orders {
            let cfg = RouterConfig { order, ..RouterConfig::default() };
            let p = completion_point(SIDE, nets, SEEDS, cfg);
            cells.push(format!("{:5.1}", p.completion_pct));
        }
        rows.push(cells);
    }
    let header = ["nets", "short-first", "long-first", "pin-count", "congestion", "declared"];
    println!("{}", table::render(&header, &rows));
}
