//! Experiment A2: value of the post-routing cleanup pass — wirelength
//! and via reduction over the switchbox suite.
//!
//! ```text
//! cargo run --release -p route-bench --bin exp_a2_cleanup
//! ```

use mighty::{MightyRouter, RouterConfig};
use route_bench::table;
use route_benchdata::suite::switchbox_suite;
use route_opt::{cleanup, minimize_vias, OptimizeConfig};
use route_verify::verify;

fn main() {
    println!("A2: post-routing cleanup — weighted cost before/after (via weight 3)\n");
    let router = MightyRouter::new(RouterConfig::default());
    let mut rows = Vec::new();
    for (name, problem) in switchbox_suite() {
        eprintln!("routing {name} ...");
        let outcome = router.route(&problem);
        let mut db = outcome.into_db();
        let before = db.stats();

        let mut wire_db = db.clone();
        let stats = cleanup(&problem, &mut wire_db, &OptimizeConfig::default());
        let report = verify(&problem, &wire_db);
        assert!(
            report.is_clean() || report.is_legal_but_incomplete(),
            "cleanup broke {name}: {report}"
        );
        let after = wire_db.stats();

        let via_stats = minimize_vias(&problem, &mut db);
        let via_report = verify(&problem, &db);
        assert!(
            via_report.is_clean() || via_report.is_legal_but_incomplete(),
            "via pass broke {name}: {via_report}"
        );
        let after_vias = db.stats();

        rows.push(vec![
            name.to_string(),
            format!("{}/{}", before.wirelength, before.vias),
            format!("{}/{}", after.wirelength, after.vias),
            stats.improved.to_string(),
            format!("{}/{}", after_vias.wirelength, after_vias.vias),
            via_stats.improved.to_string(),
        ]);
    }
    let header = [
        "switchbox",
        "wire/vias before",
        "after cleanup",
        "nets improved",
        "after via-min",
        "nets improved",
    ];
    println!("{}", table::render(&header, &rows));
}
