//! Experiment M1: hot-path throughput of the maze-search inner loop
//! across frontier/probe configurations.
//!
//! ```text
//! cargo run --release -p route-bench --bin exp_m1_hotpath [-- --quick] [-- --gate]
//! ```
//!
//! Routes the replicated channel suite through the sequential Lee
//! baseline and the rip-up router under each mode of
//! [`route_bench::hotpath::MODES`], asserts the results are
//! bit-identical, and reports routed-nets/second. Writes the
//! machine-readable record to `BENCH_maze.json` in the working
//! directory (skipped in `--quick` mode, which is the CI smoke
//! configuration).
//!
//! With `--gate`, exits nonzero if the default bucket-queue mode is
//! slower than the binary-heap mode on the rip-up router — the
//! regression guard `scripts/ci.sh` runs.

use route_bench::hotpath::{
    hotpath_batch, hotpath_json, hotpath_sweep, mighty_speedup, pre_pr_comparison, MODES,
    PRE_PR_COMMIT,
};
use route_bench::table;

const INSTANCES: usize = 64;
const REPS: usize = 5;
const QUICK_INSTANCES: usize = 12;
const QUICK_REPS: usize = 2;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let gate = args.iter().any(|a| a == "--gate");
    let (instances, reps) = if quick { (QUICK_INSTANCES, QUICK_REPS) } else { (INSTANCES, REPS) };

    println!(
        "M1: hot-path throughput — {} channel-suite instances x {reps} rep(s), {} mode(s)\n",
        instances,
        MODES.len()
    );
    let problems = hotpath_batch(instances);
    let points = hotpath_sweep(&problems, reps);

    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.router.to_string(),
                p.mode.to_string(),
                format!("{:.1}", p.millis),
                format!("{:.0}", p.nets_per_sec),
                p.nets_routed.to_string(),
                format!("{}/{instances}", p.complete),
                format!("{:016x}", p.checksum),
            ]
        })
        .collect();
    let header = ["router", "mode", "total ms", "nets/sec", "nets", "complete", "checksum"];
    println!("{}", table::render(&header, &rows));
    println!("all modes checksum-verified bit-identical per router.");

    let speedup = mighty_speedup(&points);
    println!("\nmighty buckets-bits vs heap-scalar: {speedup:.2}x routed-nets/sec");
    for router in ["lee", "mighty"] {
        if let Some((vs_pre, matches)) = pre_pr_comparison(&points, instances, router) {
            println!(
                "{router} buckets-bits vs pre-PR binary ({PRE_PR_COMMIT}): {vs_pre:.2}x, \
                 checksum {}",
                if matches { "bit-identical" } else { "DIVERGED" }
            );
        }
    }

    if !quick {
        let doc = hotpath_json(instances, reps, &points);
        let path = "BENCH_maze.json";
        std::fs::write(path, doc.render()).expect("writing BENCH_maze.json");
        println!("wrote {path}");
    }

    if gate {
        let rate = |mode: &str| {
            points
                .iter()
                .find(|p| p.router == "mighty" && p.mode == mode)
                .map(|p| p.nets_per_sec)
                .unwrap_or(0.0)
        };
        let (buckets, heap) = (rate("buckets-bits"), rate("heap-bits"));
        if buckets < heap {
            eprintln!(
                "GATE FAILED: bucket frontier ({buckets:.0} nets/sec) is slower than \
                 the binary heap ({heap:.0} nets/sec)"
            );
            std::process::exit(1);
        }
        println!("gate passed: buckets {buckets:.0} >= heap {heap:.0} nets/sec");
    }
}
