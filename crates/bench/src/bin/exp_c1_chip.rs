//! Experiment C1: chip-scale hierarchical flow — parallel per-tile
//! detail routing with seam stitching vs flat single-grid routing.
//!
//! ```text
//! cargo run --release -p route-bench --bin exp_c1_chip [-- --quick]
//! ```
//!
//! Generates one deterministic synthetic chip ([`ChipGen`]): in the
//! full configuration a 512x512 floorplan with 10,560 mostly-local nets
//! and 24 macro obstacles over a 16x16 tile grid (256 tiles). The chip
//! is routed flat (one rip-up router over the whole grid) and
//! hierarchically at 1..N workers; every hierarchical database must be
//! byte-identical regardless of the job count, and the full-size run
//! must come out verifier-clean. Writes the machine-readable record to
//! `BENCH_chip.json` (skipped in `--quick`, the CI smoke mode).

use std::time::Instant;

use mighty::{MightyRouter, RouterConfig};
use route_bench::table;
use route_benchdata::gen::ChipGen;
use route_global::{route_hierarchical, GlobalConfig, TileGrid};
use route_proto::{versioned_doc, Json};
use route_verify::verify;

struct Row {
    config: String,
    jobs: usize,
    ms: f64,
    nets_per_sec: f64,
    routed: usize,
    checksum: u64,
}

fn main() {
    let quick = std::env::args().skip(1).any(|a| a == "--quick");
    let (gen, tile) = if quick {
        (ChipGen::small(1), 16)
    } else {
        (ChipGen { width: 512, height: 512, nets: 10_560, macros: 24, ..ChipGen::small(1) }, 32)
    };
    let problem = gen.build();
    let tile_count = TileGrid::new(&problem, tile).tiles().count();
    let nets = problem.nets().len();
    println!(
        "C1: {}x{} chip, {nets} nets, {} macros, seed {} — {tile_count} tiles of {tile}\n",
        gen.width, gen.height, gen.macros, gen.seed
    );
    if !quick {
        assert!(tile_count >= 100, "the full chip must span at least 100 tiles");
        assert!(nets >= 10_000, "the full chip must carry at least 10k nets");
    }

    let mut rows: Vec<Row> = Vec::new();

    // Flat baseline: one rip-up router over the whole grid.
    let start = Instant::now();
    let flat = MightyRouter::new(RouterConfig::default()).route(&problem);
    let secs = start.elapsed().as_secs_f64();
    let report = verify(&problem, flat.db());
    assert!(report.is_clean() || report.is_legal_but_incomplete(), "{report}");
    rows.push(Row {
        config: "flat".to_string(),
        jobs: 1,
        ms: secs * 1e3,
        nets_per_sec: nets as f64 / secs,
        routed: nets - flat.failed().len(),
        checksum: flat.db().checksum(),
    });
    eprintln!("flat done in {:.1}s", secs);

    // Hierarchical at 1..N workers: the database must not depend on N.
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    let sweep = if hw > 1 { vec![1, hw] } else { vec![1, 2] };
    for jobs in sweep {
        let cfg = GlobalConfig { tile, jobs, ..GlobalConfig::default() };
        let start = Instant::now();
        let hier = route_hierarchical(&problem, &cfg);
        let secs = start.elapsed().as_secs_f64();
        let report = verify(&problem, hier.db());
        assert!(report.is_clean() || report.is_legal_but_incomplete(), "{report}");
        if !quick {
            assert!(report.is_clean(), "the full-size chip must route verifier-clean: {report}");
        }
        eprintln!(
            "hier jobs={jobs} done in {secs:.1}s ({} seams repaired, {} fallback)",
            hier.chip_stats().seams_repaired,
            hier.stats().fallback_completed
        );
        rows.push(Row {
            config: "hier".to_string(),
            jobs,
            ms: secs * 1e3,
            nets_per_sec: nets as f64 / secs,
            routed: nets - hier.failed().len(),
            checksum: hier.db().checksum(),
        });
    }
    let hier_checksums: Vec<u64> =
        rows.iter().filter(|r| r.config == "hier").map(|r| r.checksum).collect();
    assert!(
        hier_checksums.windows(2).all(|w| w[0] == w[1]),
        "hierarchical checksums depend on the job count: {hier_checksums:x?}"
    );

    let render: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.config.clone(),
                r.jobs.to_string(),
                format!("{:.0}", r.ms),
                format!("{:.0}", r.nets_per_sec),
                format!("{}/{nets}", r.routed),
                format!("{:016x}", r.checksum),
            ]
        })
        .collect();
    let header = ["config", "jobs", "ms", "nets/sec", "routed", "checksum"];
    println!("{}", table::render(&header, &render));
    println!("hierarchical databases bit-identical across job counts.");

    if !quick {
        let runs: Vec<Json> = rows
            .iter()
            .map(|r| {
                Json::obj([
                    ("config", Json::str(r.config.as_str())),
                    ("jobs", Json::from(r.jobs as u64)),
                    ("ms", Json::from(r.ms)),
                    ("nets_per_sec", Json::from(r.nets_per_sec)),
                    ("routed", Json::from(r.routed as u64)),
                    ("nets", Json::from(nets as u64)),
                    ("checksum", Json::str(format!("{:016x}", r.checksum))),
                ])
            })
            .collect();
        let doc = versioned_doc(
            "exp_c1_chip",
            vec![
                ("width".to_string(), Json::from(u64::from(gen.width))),
                ("height".to_string(), Json::from(u64::from(gen.height))),
                ("nets".to_string(), Json::from(nets as u64)),
                ("macros".to_string(), Json::from(u64::from(gen.macros))),
                ("seed".to_string(), Json::from(gen.seed)),
                ("tile".to_string(), Json::from(u64::from(tile))),
                ("tiles".to_string(), Json::from(tile_count as u64)),
                ("runs".to_string(), Json::Arr(runs)),
            ],
        );
        let path = "BENCH_chip.json";
        std::fs::write(path, doc.render()).expect("writing BENCH_chip.json");
        println!("wrote {path}");
    }
}
