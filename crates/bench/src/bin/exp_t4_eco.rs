//! Experiment T4: partially routed areas — the engineering-change
//! scenario. A region is routed, a change order adds late nets, and the
//! incremental router must fit them, modifying existing wiring when
//! needed. The control keeps the existing wiring frozen.
//!
//! ```text
//! cargo run --release -p route-bench --bin exp_t4_eco
//! ```

use route_bench::sweeps::eco_point;
use route_bench::table;

const SIDE: u32 = 16;
const SEEDS: u64 = 10;
/// (pre-placed nets, late nets) pairs of increasing pressure.
const POINTS: [(u32, u32); 4] = [(8, 4), (12, 6), (16, 6), (18, 8)];

fn main() {
    println!(
        "T4: engineering change on {SIDE}x{SIDE} boxes — completion of the LATE \
         nets, {SEEDS} seeds per point\n"
    );
    let mut rows = Vec::new();
    for (pre, added) in POINTS {
        eprintln!("preplaced = {pre}, added = {added} ...");
        let p = eco_point(SIDE, pre, added, SEEDS);
        rows.push(vec![
            pre.to_string(),
            added.to_string(),
            format!("{:5.1}", p.frozen_pct),
            format!("{:5.1}", p.ripup_pct),
            p.disturbed.to_string(),
        ]);
    }
    let header = ["preplaced", "added", "frozen %", "rip-up %", "traces disturbed"];
    println!("{}", table::render(&header, &rows));
    println!(
        "frozen = modification disabled (existing wiring untouchable);\n\
         rip-up = existing wiring may be pushed or ripped and re-routed."
    );
}
