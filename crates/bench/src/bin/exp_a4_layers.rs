//! Experiment A4: two-layer vs three-layer (HVH) channel routing — the
//! multi-layer extension of this router generation (cf. Chameleon,
//! DAC 1986). With a second horizontal layer the rip-up router should
//! need roughly half the tracks.
//!
//! ```text
//! cargo run --release -p route-bench --bin exp_a4_layers
//! ```

use mighty::{MightyRouter, RouterConfig};
use route_bench::table;
use route_benchdata::suite::channel_suite;
use route_channel::ChannelSpec;
use route_verify::verify;

/// Minimum track count at which the rip-up router completes `spec` with
/// the given layer count, searching up from 1.
fn min_tracks(spec: &ChannelSpec, layers: u8, cap: usize) -> Option<usize> {
    let router = MightyRouter::new(RouterConfig::default());
    for tracks in 1..=cap {
        let problem = spec.to_problem_with_layers(tracks, layers);
        let outcome = router.route(&problem);
        if outcome.is_complete() {
            let report = verify(&problem, outcome.db());
            assert!(report.is_clean(), "illegal routing at {tracks} tracks: {report}");
            return Some(tracks);
        }
    }
    None
}

fn main() {
    println!("A4: rip-up/reroute minimum tracks, two vs three layers\n");
    let mut rows = Vec::new();
    for (name, spec) in channel_suite() {
        eprintln!("routing {name} ...");
        let cap = spec.density() as usize + 9;
        let two = min_tracks(&spec, 2, cap);
        let three = min_tracks(&spec, 3, cap);
        let cell = |t: Option<usize>| t.map_or("fail".to_string(), |t| t.to_string());
        let ratio = match (two, three) {
            (Some(a), Some(b)) => format!("{:.2}", b as f64 / a as f64),
            _ => "-".to_string(),
        };
        rows.push(vec![
            name.to_string(),
            spec.density().to_string(),
            cell(two),
            cell(three),
            ratio,
        ]);
    }
    let header = ["channel", "density", "2-layer", "3-layer", "ratio"];
    println!("{}", table::render(&header, &rows));
    println!("density is the 2-layer lower bound; 3-layer HVH can beat it.");
}
