//! Experiment T2: switchbox completion, including the "one less column"
//! run on the Burstein-class difficult switchbox.
//!
//! ```text
//! cargo run --release -p route-bench --bin exp_t2_switchbox
//! ```

use mighty::RouterConfig;
use route_bench::switchboxes::{score_mighty, score_sequential};
use route_bench::table;
use route_benchdata::suite::switchbox_suite;
use route_benchdata::{burstein_class_width, BURSTEIN_WIDTH};
use route_channel::swbox;
use route_model::Problem;
use route_verify::verify;

fn row(name: &str, problem: &Problem) -> Vec<String> {
    let seq = score_sequential(problem);
    let greedy_sb = match swbox::route(problem) {
        Ok(sol) => {
            let report = verify(problem, &sol.db);
            assert!(report.is_clean(), "greedy-SB illegal on {name}: {report}");
            format!("{0}/{0}", problem.nets().len())
        }
        Err(_) => "fail".to_string(),
    };
    let mig = score_mighty(problem, RouterConfig::default());
    vec![
        name.to_string(),
        format!("{}x{}", problem.width(), problem.height()),
        problem.nets().len().to_string(),
        greedy_sb,
        seq.cell(),
        mig.cell(),
        mig.wirelength.to_string(),
        mig.vias.to_string(),
    ]
}

fn main() {
    println!("T2: switchbox completion — sequential maze baseline vs rip-up/reroute\n");
    let mut rows = Vec::new();
    for (name, problem) in switchbox_suite() {
        eprintln!("routing {name} ...");
        rows.push(row(name, &problem));
    }
    // The headline claim: the same pin set in a box one column narrower.
    let reduced = burstein_class_width(BURSTEIN_WIDTH - 1);
    eprintln!("routing burstein-class-reduced ...");
    rows.push(row("burstein-class-1col", &reduced));

    let header = ["switchbox", "size", "nets", "greedy-SB", "seq", "rip-up", "wire", "vias"];
    println!("{}", table::render(&header, &rows));
    println!(
        "`burstein-class-1col` is the Burstein-class pin set in a box one column\n\
         narrower — the abstract's \"one less column than the original data\" claim.\n\
         greedy-SB is the Luk-style sweep: it has no fallback space, so it either\n\
         routes everything or fails the box."
    );
}
