//! Sustained-throughput and tail-latency measurement of the routing
//! service: the S1 experiment behind `BENCH_serve.json`.
//!
//! The driver submits a fixed request set straight into
//! [`mighty::RouteService`] — the same warm-worker pool `vroute serve`
//! puts behind a socket — at increasing worker counts, and reports
//! requests/second plus exact p50/p99 request latency per count.
//! Checksums of every run are compared against direct cold routing, so
//! the throughput table doubles as a serve-vs-batch parity check.

use std::sync::mpsc;
use std::time::Instant;

use mighty::{JobSpec, MightyRouter, RouteService, RouterConfig, ServiceConfig, ServiceReply};
use route_model::Problem;
use route_proto::{versioned_doc, Json};

/// One measured point of the service scaling sweep.
#[derive(Debug, Clone, Copy)]
pub struct ServePoint {
    /// Warm worker threads serving the queue.
    pub workers: usize,
    /// Wall-clock time from first submit to last reply, in ms.
    pub wall_ms: u64,
    /// Requests completed per second of wall-clock time.
    pub requests_per_sec: f64,
    /// Exact median of per-request latency (admission to reply), ms.
    pub p50_ms: u64,
    /// Exact 99th percentile of per-request latency, ms.
    pub p99_ms: u64,
    /// Slowest single request, ms.
    pub max_ms: u64,
    /// Mean time requests spent waiting in the admission queue, ms.
    pub mean_queued_ms: f64,
    /// Requests whose routing connected every net.
    pub complete: usize,
}

/// The exact `q`-quantile of `sorted` by the nearest-rank method.
fn quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (q.clamp(0.0, 1.0) * sorted.len() as f64).ceil().max(1.0) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

/// Runs `problems` through a fresh service at each worker count and
/// reports one [`ServePoint`] per count.
///
/// # Panics
///
/// Panics if any request errors, or if any run's per-request checksums
/// disagree with routing the same problems directly — warm service
/// results must be byte-identical to cold ones.
pub fn serve_sweep(problems: &[Problem], worker_counts: &[usize]) -> Vec<ServePoint> {
    let router = MightyRouter::new(RouterConfig::default());
    let reference: Vec<u64> =
        problems.iter().map(|p| router.route(p).into_db().checksum()).collect();

    let mut points = Vec::new();
    for &workers in worker_counts {
        let config = ServiceConfig::builder()
            .workers(workers)
            .queue_capacity(problems.len().max(1))
            .build()
            .expect("valid service config");
        let service = RouteService::start(config).expect("service starts");

        let (tx, rx) = mpsc::channel();
        let started = Instant::now();
        for (i, problem) in problems.iter().enumerate() {
            service.submit(JobSpec::new(i as u64, problem.clone()), tx.clone()).expect("admitted");
        }
        drop(tx);

        let mut latencies = vec![0u64; problems.len()];
        let mut queued_total = 0u64;
        let mut complete = 0usize;
        let mut checksums = vec![0u64; problems.len()];
        for _ in 0..problems.len() {
            match rx.recv().expect("every job replies") {
                ServiceReply::Event { .. } => unreachable!("no events were requested"),
                ServiceReply::Done(done) => {
                    let tag = done.tag as usize;
                    latencies[tag] = done.total_ms;
                    queued_total += done.queued_ms;
                    let routing = done.result.expect("request routes");
                    complete += usize::from(routing.is_complete());
                    checksums[tag] = routing.db.checksum();
                }
            }
        }
        let wall_ms = started.elapsed().as_millis() as u64;
        service.shutdown();
        assert_eq!(reference, checksums, "{workers}-worker service run diverged from cold routing");

        latencies.sort_unstable();
        points.push(ServePoint {
            workers,
            wall_ms,
            requests_per_sec: problems.len() as f64 / (wall_ms.max(1) as f64 / 1000.0),
            p50_ms: quantile(&latencies, 0.50),
            p99_ms: quantile(&latencies, 0.99),
            max_ms: latencies.last().copied().unwrap_or(0),
            mean_queued_ms: queued_total as f64 / problems.len().max(1) as f64,
            complete,
        });
    }
    points
}

/// Serializes a sweep as the `BENCH_serve.json` artifact: a versioned
/// document with request-set shape, hardware parallelism and one
/// record per worker count.
pub fn serve_sweep_json(suite: &str, requests: usize, points: &[ServePoint]) -> Json {
    let hardware = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let pairs = [
        ("experiment", Json::str("serve-throughput-latency")),
        ("suite", Json::str(suite)),
        ("requests", Json::from(requests)),
        ("hardware_threads", Json::from(hardware)),
        (
            "points",
            Json::arr(points.iter().map(|p| {
                Json::obj([
                    ("workers", Json::from(p.workers)),
                    ("wall_ms", Json::from(p.wall_ms)),
                    ("requests_per_sec", Json::from(p.requests_per_sec)),
                    ("p50_ms", Json::from(p.p50_ms)),
                    ("p99_ms", Json::from(p.p99_ms)),
                    ("max_ms", Json::from(p.max_ms)),
                    ("mean_queued_ms", Json::from(p.mean_queued_ms)),
                    ("complete", Json::from(p.complete)),
                ])
            })),
        ),
    ];
    versioned_doc("bench-serve", pairs.into_iter().map(|(k, v)| (k.to_string(), v)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::replicated_channel_batch;

    #[test]
    fn quantiles_use_nearest_rank() {
        let sorted = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10];
        assert_eq!(quantile(&sorted, 0.50), 5);
        assert_eq!(quantile(&sorted, 0.99), 10);
        assert_eq!(quantile(&sorted, 0.0), 1);
        assert_eq!(quantile(&[], 0.5), 0);
    }

    #[test]
    fn sweep_routes_everything_and_checks_parity() {
        let problems = replicated_channel_batch(6);
        let points = serve_sweep(&problems, &[1, 2]);
        assert_eq!(points.len(), 2);
        for p in &points {
            assert_eq!(p.complete, 6, "suite instances must route completely");
            assert!(p.p50_ms <= p.p99_ms && p.p99_ms <= p.max_ms);
            assert!(p.requests_per_sec > 0.0);
        }
    }

    #[test]
    fn sweep_json_is_versioned() {
        let doc = serve_sweep_json("channels", 0, &[]);
        let text = doc.render_compact();
        assert!(text.starts_with("{\"v\":1,\"command\":\"bench-serve\""), "{text}");
    }
}
