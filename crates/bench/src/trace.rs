//! Machine-readable routing traces: [`RouteObserver`] events rendered
//! as line-delimited JSON (one event object per line).
//!
//! [`TraceRecorder`] wraps an [`EventLog`] so it can be handed to any
//! [`DetailedRouter::route_observed`](route_model::DetailedRouter::route_observed)
//! call, then rendered with [`TraceRecorder::render`]. The free function
//! [`trace_lines`] renders events the batch engine already collected
//! (see `mighty::ObserveMode::Trace`).
//!
//! The line schema is stable: every record carries `"ev"` (the
//! [`kind_name`](RouteEvent::kind_name)) and `"instance"`, plus the
//! event's own payload fields with fixed names. Consumers stream one
//! line at a time; no JSON array wraps the file.
//!
//! # Examples
//!
//! ```
//! use route_bench::trace::TraceRecorder;
//! use route_model::{DetailedRouter, PinSide, ProblemBuilder};
//! use mighty::{MightyRouter, RouterConfig};
//!
//! let mut b = ProblemBuilder::switchbox(8, 8);
//! b.net("a").pin_side(PinSide::Left, 3).pin_side(PinSide::Right, 5);
//! let problem = b.build().unwrap();
//!
//! let mut trace = TraceRecorder::new("swbox-0");
//! let router = MightyRouter::new(RouterConfig::default());
//! let outcome = router.route_observed(&problem, &mut trace);
//! assert!(outcome.is_complete());
//! let text = trace.render();
//! assert!(text.lines().all(|l| l.starts_with("{\"ev\":")));
//! ```

use route_model::{EventLog, NetId, RouteEvent, RouteObserver, SearchKind, SearchProbe};

use crate::json::Json;
use route_proto::event_pairs;

/// An observer that records events and renders them as line-delimited
/// JSON tagged with an instance label.
#[derive(Debug, Clone, Default)]
pub struct TraceRecorder {
    instance: String,
    log: EventLog,
}

impl TraceRecorder {
    /// A recorder whose lines are tagged `"instance": <label>`.
    pub fn new(instance: impl Into<String>) -> Self {
        TraceRecorder { instance: instance.into(), log: EventLog::new() }
    }

    /// The recorded events, in emission order.
    pub fn events(&self) -> &[RouteEvent] {
        self.log.events()
    }

    /// The underlying log (for replay into other observers).
    pub fn log(&self) -> &EventLog {
        &self.log
    }

    /// Renders every recorded event as one JSON line, with a trailing
    /// newline after each record.
    pub fn render(&self) -> String {
        trace_lines(&self.instance, self.log.events())
    }
}

impl RouteObserver for TraceRecorder {
    fn on_net_scheduled(&mut self, net: NetId) {
        self.log.on_net_scheduled(net);
    }

    fn on_search_done(&mut self, net: NetId, kind: SearchKind, probe: SearchProbe) {
        self.log.on_search_done(net, kind, probe);
    }

    fn on_weak_modification(&mut self, net: NetId, victim: NetId) {
        self.log.on_weak_modification(net, victim);
    }

    fn on_strong_ripup(&mut self, net: NetId, victim: NetId, rip_count: u32) {
        self.log.on_strong_ripup(net, victim, rip_count);
    }

    fn on_penalty_escalation(&mut self, victim: NetId, penalty: u64) {
        self.log.on_penalty_escalation(victim, penalty);
    }

    fn on_net_committed(&mut self, net: NetId) {
        self.log.on_net_committed(net);
    }

    fn on_net_failed(&mut self, net: NetId) {
        self.log.on_net_failed(net);
    }
}

/// Renders `events` as line-delimited JSON, one record per line, each
/// tagged with `instance`.
pub fn trace_lines(instance: &str, events: &[RouteEvent]) -> String {
    let mut out = String::new();
    for ev in events {
        out.push_str(&event_json(instance, ev).render_compact());
        out.push('\n');
    }
    out
}

/// The JSON object for one event: the shared payload vocabulary from
/// [`route_proto::event_pairs`], tagged with the instance label.
fn event_json(instance: &str, ev: &RouteEvent) -> Json {
    let mut pairs: Vec<(String, Json)> =
        vec![("ev".into(), Json::str(ev.kind_name())), ("instance".into(), Json::str(instance))];
    pairs.extend(event_pairs(ev));
    Json::Obj(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_event_kind_renders_one_line() {
        let events = [
            RouteEvent::NetScheduled { net: NetId(0) },
            RouteEvent::SearchDone {
                net: NetId(0),
                kind: SearchKind::Soft,
                probe: SearchProbe { expanded: 7, relaxed: 20, heap_peak: 5, found: true },
            },
            RouteEvent::WeakModification { net: NetId(0), victim: NetId(1) },
            RouteEvent::StrongRipup { net: NetId(0), victim: NetId(1), rip_count: 2 },
            RouteEvent::PenaltyEscalation { victim: NetId(1), penalty: 32 },
            RouteEvent::NetCommitted { net: NetId(0) },
            RouteEvent::NetFailed { net: NetId(1) },
        ];
        let text = trace_lines("box-3", &events);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), events.len());
        for (line, ev) in lines.iter().zip(&events) {
            assert!(line.starts_with(&format!("{{\"ev\":\"{}\"", ev.kind_name())), "{line}");
            assert!(line.contains("\"instance\":\"box-3\""), "{line}");
            assert!(!line.contains('\n'));
        }
        assert!(lines[1].contains("\"kind\":\"soft\""));
        assert!(lines[1].contains("\"expanded\":7"));
        assert!(lines[1].contains("\"found\":true"));
        assert!(lines[3].contains("\"rip_count\":2"));
        assert!(lines[4].contains("\"penalty\":32"));
    }

    #[test]
    fn recorder_observes_and_renders() {
        let mut rec = TraceRecorder::new("t");
        rec.on_net_scheduled(NetId(4));
        rec.on_net_committed(NetId(4));
        assert_eq!(rec.events().len(), 2);
        let text = rec.render();
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("\"net\":4"));
    }
}
