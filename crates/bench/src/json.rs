//! A minimal JSON writer for machine-readable benchmark artifacts.
//!
//! The workspace is dependency-free, so this hand-rolls the small
//! subset of JSON the benchmark emitters need: objects with ordered
//! keys, arrays, strings, integers, floats and booleans. Output is
//! pretty-printed with two-space indentation so artifacts diff well.
//!
//! # Examples
//!
//! ```
//! use route_bench::json::Json;
//!
//! let doc = Json::obj([
//!     ("suite", Json::str("channels")),
//!     ("instances", Json::from(64u64)),
//!     ("threads", Json::arr([Json::from(1u64), Json::from(8u64)])),
//! ]);
//! assert!(doc.render().contains("\"instances\": 64"));
//! ```

use std::fmt;

/// A JSON value. Object keys keep insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (serialized without a decimal point).
    Int(i64),
    /// A float (serialized with enough precision to round-trip).
    Float(f64),
    /// A string (escaped on output).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An array from any iterator of values.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// An object from any iterator of key/value pairs.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Serializes the value as pretty-printed JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0).expect("writing to a String cannot fail");
        out.push('\n');
        out
    }

    /// Serializes the value on a single line with no insignificant
    /// whitespace — the form line-delimited JSON (one record per line)
    /// requires.
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out).expect("writing to a String cannot fail");
        out
    }

    fn write_compact(&self, out: &mut String) -> fmt::Result {
        use fmt::Write;
        match self {
            Json::Arr(items) => {
                write!(out, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(out, ",")?;
                    }
                    item.write_compact(out)?;
                }
                write!(out, "]")
            }
            Json::Obj(pairs) => {
                write!(out, "{{")?;
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        write!(out, ",")?;
                    }
                    write_escaped(out, key)?;
                    write!(out, ":")?;
                    value.write_compact(out)?;
                }
                write!(out, "}}")
            }
            scalar => scalar.write(out, 0),
        }
    }

    fn write(&self, out: &mut String, indent: usize) -> fmt::Result {
        use fmt::Write;
        let pad = "  ".repeat(indent + 1);
        let close = "  ".repeat(indent);
        match self {
            Json::Null => write!(out, "null"),
            Json::Bool(b) => write!(out, "{b}"),
            Json::Int(n) => write!(out, "{n}"),
            Json::Float(x) if x.is_finite() => write!(out, "{x}"),
            // JSON has no NaN/Infinity; null is the conventional stand-in.
            Json::Float(_) => write!(out, "null"),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) if items.is_empty() => write!(out, "[]"),
            Json::Arr(items) => {
                writeln!(out, "[")?;
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad);
                    item.write(out, indent + 1)?;
                    writeln!(out, "{}", if i + 1 < items.len() { "," } else { "" })?;
                }
                write!(out, "{close}]")
            }
            Json::Obj(pairs) if pairs.is_empty() => write!(out, "{{}}"),
            Json::Obj(pairs) => {
                writeln!(out, "{{")?;
                for (i, (key, value)) in pairs.iter().enumerate() {
                    out.push_str(&pad);
                    write_escaped(out, key)?;
                    write!(out, ": ")?;
                    value.write(out, indent + 1)?;
                    writeln!(out, "{}", if i + 1 < pairs.len() { "," } else { "" })?;
                }
                write!(out, "{close}}}")
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) -> fmt::Result {
    use fmt::Write;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32)?,
            c => out.push(c),
        }
    }
    out.push('"');
    Ok(())
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        i64::try_from(n).map(Json::Int).unwrap_or(Json::Float(n as f64))
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::from(n as u64)
    }
}

impl From<i64> for Json {
    fn from(n: i64) -> Json {
        Json::Int(n)
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Float(x)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null\n");
        assert_eq!(Json::from(true).render(), "true\n");
        assert_eq!(Json::from(42u64).render(), "42\n");
        assert_eq!(Json::from(-7i64).render(), "-7\n");
        assert_eq!(Json::from(1.5).render(), "1.5\n");
        assert_eq!(Json::Float(f64::NAN).render(), "null\n");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(Json::str("a\"b\\c\nd").render(), "\"a\\\"b\\\\c\\nd\"\n");
        assert_eq!(Json::str("bell\u{7}").render(), "\"bell\\u0007\"\n");
    }

    #[test]
    fn nested_structure_renders_stably() {
        let doc = Json::obj([
            ("name", Json::str("engine")),
            ("empty_arr", Json::arr([])),
            ("empty_obj", Json::obj::<String>([])),
            ("rows", Json::arr([Json::obj([("jobs", Json::from(1u64))])])),
        ]);
        let text = doc.render();
        assert_eq!(
            text,
            "{\n  \"name\": \"engine\",\n  \"empty_arr\": [],\n  \"empty_obj\": {},\n  \
             \"rows\": [\n    {\n      \"jobs\": 1\n    }\n  ]\n}\n"
        );
    }

    #[test]
    fn huge_u64_degrades_to_float() {
        assert!(matches!(Json::from(u64::MAX), Json::Float(_)));
    }

    #[test]
    fn compact_rendering_is_single_line() {
        let doc = Json::obj([
            ("kind", Json::str("search_done")),
            ("probe", Json::obj([("expanded", Json::from(12u64))])),
            ("tags", Json::arr([Json::from(1u64), Json::from(2u64)])),
        ]);
        assert_eq!(
            doc.render_compact(),
            "{\"kind\":\"search_done\",\"probe\":{\"expanded\":12},\"tags\":[1,2]}"
        );
        assert_eq!(Json::arr([]).render_compact(), "[]");
        assert_eq!(Json::obj::<String>([]).render_compact(), "{}");
    }
}
