//! Re-export of the shared JSON value type.
//!
//! The `Json` writer grew up here as a benchmark-artifact emitter; the
//! serve protocol promoted it (plus a parser) into the [`route_proto`]
//! crate so every machine-readable surface shares one value type. This
//! module stays as the historical path — `route_bench::json::Json` and
//! `route_proto::Json` are the same type.

pub use route_proto::json::*;
