//! Minimal fixed-width table printer for experiment output.

/// Formats rows of cells as an aligned text table with a header rule.
///
/// # Examples
///
/// ```
/// use route_bench::table::render;
///
/// let out = render(
///     &["net", "tracks"],
///     &[vec!["a".into(), "3".into()], vec!["b".into(), "12".into()]],
/// );
/// assert!(out.contains("net"));
/// assert!(out.lines().count() >= 4);
/// ```
pub fn render(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row width must match header");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: &[String]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<width$}", c, width = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
            .trim_end()
            .to_string()
    };
    let mut out = String::new();
    out.push_str(&line(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>()));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&line(row));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligns_columns() {
        let out = render(
            &["x", "longer"],
            &[vec!["aaaa".into(), "1".into()], vec!["b".into(), "2".into()]],
        );
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        // The second column starts at the same offset in every row.
        let offset = lines[0].find("longer").unwrap();
        assert_eq!(&lines[2][offset..offset + 1], "1");
        assert_eq!(&lines[3][offset..offset + 1], "2");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let _ = render(&["a", "b"], &[vec!["only-one".into()]]);
    }
}
