//! Drivers for the sweep experiments F1 (completion vs congestion),
//! F2 (runtime scaling) and T3 (obstacle density).

use std::time::Instant;

use mighty::{MightyRouter, RouterConfig, RouterStats};
use route_benchdata::gen::{ObstructedGen, SwitchboxGen};
use route_verify::verify;

/// A named router-configuration factory for an ablation run.
pub type Ablation = (&'static str, fn() -> RouterConfig);

/// The four ablation configurations of the modification machinery.
pub const ABLATIONS: [Ablation; 4] = [
    ("none", || RouterConfig::no_modification()),
    ("weak-only", || RouterConfig { strong: false, ..RouterConfig::default() }),
    ("strong-only", || RouterConfig { weak: false, ..RouterConfig::default() }),
    ("weak+strong", RouterConfig::default),
];

/// One measured point of the F1 sweep.
#[derive(Debug, Clone)]
pub struct CompletionPoint {
    /// Nets requested per instance.
    pub nets: u32,
    /// Mean completion rate over the seeds, in percent.
    pub completion_pct: f64,
    /// Fraction of instances fully routed, in percent.
    pub full_pct: f64,
    /// Aggregated router stats over all seeds.
    pub stats: RouterStats,
}

/// Measures the completion rate of one configuration on random `side x
/// side` switchboxes with `nets` nets, averaged over `seeds` instances.
///
/// # Panics
///
/// Panics if any routing is illegal.
pub fn completion_point(side: u32, nets: u32, seeds: u64, cfg: RouterConfig) -> CompletionPoint {
    let mut routed = 0usize;
    let mut total = 0usize;
    let mut full = 0usize;
    let mut stats = RouterStats::default();
    for seed in 0..seeds {
        let problem = SwitchboxGen { width: side, height: side, nets, seed }.build();
        let out = MightyRouter::new(cfg).route(&problem);
        let report = verify(&problem, out.db());
        assert!(
            report.is_clean() || report.is_legal_but_incomplete(),
            "illegal routing in sweep: {report}"
        );
        routed += problem.nets().len() - out.failed().len();
        total += problem.nets().len();
        full += usize::from(out.is_complete());
        let s = out.stats();
        stats.hard_routes += s.hard_routes;
        stats.soft_routes += s.soft_routes;
        stats.weak_pushes += s.weak_pushes;
        stats.weak_rollbacks += s.weak_rollbacks;
        stats.rips += s.rips;
        stats.reroutes += s.reroutes;
        stats.expanded += s.expanded;
        stats.events += s.events;
    }
    CompletionPoint {
        nets,
        completion_pct: 100.0 * routed as f64 / total.max(1) as f64,
        full_pct: 100.0 * full as f64 / seeds.max(1) as f64,
        stats,
    }
}

/// One measured point of the F2 scaling sweep.
#[derive(Debug, Clone, Copy)]
pub struct ScalingPoint {
    /// Grid side length.
    pub side: u32,
    /// Net count.
    pub nets: u32,
    /// Wall-clock milliseconds for one full routing run.
    pub millis: f64,
    /// Search nodes settled.
    pub expanded: u64,
    /// Whether the instance routed completely.
    pub complete: bool,
}

/// Times one full rip-up/reroute run on a generated `side x side`
/// switchbox with `nets` nets.
///
/// # Panics
///
/// Panics if the routing is illegal.
pub fn scaling_point(side: u32, nets: u32, seed: u64) -> ScalingPoint {
    let problem = SwitchboxGen { width: side, height: side, nets, seed }.build();
    let router = MightyRouter::new(RouterConfig::default());
    let start = Instant::now();
    let out = router.route(&problem);
    let millis = start.elapsed().as_secs_f64() * 1e3;
    let report = verify(&problem, out.db());
    assert!(
        report.is_clean() || report.is_legal_but_incomplete(),
        "illegal routing in scaling sweep: {report}"
    );
    ScalingPoint { side, nets, millis, expanded: out.stats().expanded, complete: out.is_complete() }
}

/// One measured point of the T3 obstacle sweep.
#[derive(Debug, Clone, Copy)]
pub struct ObstaclePoint {
    /// Obstacle coverage, percent of interior cells.
    pub obstacle_pct: u32,
    /// Completion rate of the sequential baseline, percent of nets.
    pub sequential_pct: f64,
    /// Completion rate of the rip-up/reroute router, percent of nets.
    pub mighty_pct: f64,
}

/// Compares the sequential baseline and the rip-up/reroute router on
/// obstructed regions, averaged over `seeds` instances.
///
/// # Panics
///
/// Panics if any routing is illegal.
pub fn obstacle_point(side: u32, nets: u32, obstacle_pct: u32, seeds: u64) -> ObstaclePoint {
    let mut seq_routed = 0usize;
    let mut mig_routed = 0usize;
    let mut total = 0usize;
    for seed in 0..seeds {
        let problem = ObstructedGen { width: side, height: side, nets, obstacle_pct, seed }.build();
        let seq = crate::switchboxes::score_sequential(&problem);
        let mig = crate::switchboxes::score_mighty(&problem, RouterConfig::default());
        seq_routed += seq.completed;
        mig_routed += mig.completed;
        total += problem.nets().len();
    }
    ObstaclePoint {
        obstacle_pct,
        sequential_pct: 100.0 * seq_routed as f64 / total.max(1) as f64,
        mighty_pct: 100.0 * mig_routed as f64 / total.max(1) as f64,
    }
}

/// One measured point of the T4 engineering-change sweep.
#[derive(Debug, Clone, Copy)]
pub struct EcoPoint {
    /// Nets pre-routed before the change order.
    pub preplaced: usize,
    /// Late nets added by the change order.
    pub added: usize,
    /// Completion of the added nets without modification, percent.
    pub frozen_pct: f64,
    /// Completion of the added nets with rip-up/reroute, percent.
    pub ripup_pct: f64,
    /// Pre-routed wiring (trace count) the repair actually touched,
    /// summed over seeds.
    pub disturbed: u64,
}

/// The engineering-change scenario: route the first `preplaced` nets
/// sequentially, then hand the database to the incremental router to
/// connect the remaining `added` nets. The control run must respect the
/// existing wiring (modification disabled); the rip-up run may move it.
///
/// # Panics
///
/// Panics if any routing is illegal.
pub fn eco_point(side: u32, preplaced: u32, added: u32, seeds: u64) -> EcoPoint {
    use route_maze::{sequential, CostModel};
    use route_model::RouteDb;

    let total = preplaced + added;
    let mut frozen_done = 0usize;
    let mut ripup_done = 0usize;
    let mut attempted = 0usize;
    let mut disturbed = 0u64;
    for seed in 0..seeds {
        let problem = SwitchboxGen { width: side, height: side, nets: total, seed }.build();
        let mut db = RouteDb::new(&problem);
        for net in problem.nets().iter().take(preplaced as usize) {
            let _ = sequential::connect_net(&mut db, net.id, CostModel::default());
        }
        let pre_traces: u64 = problem
            .nets()
            .iter()
            .take(preplaced as usize)
            .map(|n| db.traces(n.id).count() as u64)
            .sum();
        let added_ids: Vec<_> =
            problem.nets().iter().skip(preplaced as usize).map(|n| n.id).collect();
        attempted += added_ids.len();

        for (cfg, done) in [
            (RouterConfig::no_modification(), &mut frozen_done),
            (RouterConfig::default(), &mut ripup_done),
        ] {
            let out = MightyRouter::new(cfg)
                .try_route_incremental(&problem, db.clone())
                .expect("database built for this problem");
            let report = verify(&problem, out.db());
            assert!(
                report.is_clean() || report.is_legal_but_incomplete(),
                "illegal ECO routing: {report}"
            );
            *done += added_ids.iter().filter(|id| !out.failed().contains(id)).count();
            if cfg.strong {
                let post_traces: u64 = problem
                    .nets()
                    .iter()
                    .take(preplaced as usize)
                    .map(|n| out.db().traces(n.id).count() as u64)
                    .sum();
                disturbed += post_traces.abs_diff(pre_traces);
            }
        }
    }
    EcoPoint {
        preplaced: preplaced as usize,
        added: added as usize,
        frozen_pct: 100.0 * frozen_done as f64 / attempted.max(1) as f64,
        ripup_pct: 100.0 * ripup_done as f64 / attempted.max(1) as f64,
        disturbed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completion_point_reports_percentages() {
        let cfg = RouterConfig::default();
        let p = completion_point(10, 4, 3, cfg);
        assert!(p.completion_pct >= 0.0 && p.completion_pct <= 100.0);
        assert!(p.full_pct >= 0.0 && p.full_pct <= 100.0);
        assert_eq!(p.nets, 4);
    }

    #[test]
    fn modification_never_reduces_completion_on_small_sweep() {
        let none = completion_point(10, 10, 4, RouterConfig::no_modification());
        let full = completion_point(10, 10, 4, RouterConfig::default());
        assert!(full.completion_pct >= none.completion_pct);
    }

    #[test]
    fn scaling_point_measures() {
        let p = scaling_point(10, 5, 1);
        assert!(p.millis >= 0.0);
        assert!(p.expanded > 0);
    }

    #[test]
    fn obstacle_point_compares_routers() {
        let p = obstacle_point(12, 5, 10, 2);
        assert!(p.mighty_pct >= 0.0 && p.mighty_pct <= 100.0);
        assert!(p.sequential_pct <= p.mighty_pct + 1e-9 || p.sequential_pct <= 100.0);
    }

    #[test]
    fn ablations_enumerate_four_configs() {
        assert_eq!(ABLATIONS.len(), 4);
        let names: Vec<&str> = ABLATIONS.iter().map(|(n, _)| *n).collect();
        assert!(names.contains(&"weak+strong"));
        // Configurations are actually distinct.
        assert!(!ABLATIONS[0].1().strong && ABLATIONS[3].1().strong);
    }
}
