//! Experiment T2 driver: switchbox completion per router.

use mighty::{MightyRouter, RouterConfig};
use route_maze::{sequential, CostModel};
use route_model::Problem;
use route_verify::verify;

/// What one router achieved on one switchbox.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoxScore {
    /// Nets fully routed.
    pub completed: usize,
    /// Total nets.
    pub total: usize,
    /// Total wire cells of the final (legal) routing.
    pub wirelength: u64,
    /// Vias of the final routing.
    pub vias: u64,
}

impl BoxScore {
    /// Whether every net completed.
    pub fn is_complete(&self) -> bool {
        self.completed == self.total
    }

    /// Compact cell text: `24/24` or `21/24`.
    pub fn cell(&self) -> String {
        format!("{}/{}", self.completed, self.total)
    }
}

/// Routes `problem` with the sequential Lee-style baseline (no
/// modification) and verifies the result is legal.
///
/// # Panics
///
/// Panics if the baseline produces an illegal routing.
pub fn score_sequential(problem: &Problem) -> BoxScore {
    let out = sequential::route_all(problem, CostModel::default());
    let report = verify(problem, &out.db);
    assert!(
        report.is_clean() || report.is_legal_but_incomplete(),
        "sequential baseline produced illegal routing: {report}"
    );
    let stats = out.db.stats();
    BoxScore {
        completed: problem.nets().len() - out.failed.len(),
        total: problem.nets().len(),
        wirelength: stats.wirelength,
        vias: stats.vias,
    }
}

/// Routes `problem` with the rip-up/reroute router under `cfg` and
/// verifies the result is legal.
///
/// # Panics
///
/// Panics if the router produces an illegal routing.
pub fn score_mighty(problem: &Problem, cfg: RouterConfig) -> BoxScore {
    let out = MightyRouter::new(cfg).route(problem);
    let report = verify(problem, out.db());
    assert!(
        report.is_clean() || report.is_legal_but_incomplete(),
        "rip-up/reroute produced illegal routing: {report}"
    );
    let stats = out.db().stats();
    BoxScore {
        completed: problem.nets().len() - out.failed().len(),
        total: problem.nets().len(),
        wirelength: stats.wirelength,
        vias: stats.vias,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use route_benchdata::gen::SwitchboxGen;

    #[test]
    fn scores_agree_on_totals() {
        let p = SwitchboxGen { width: 10, height: 10, nets: 6, seed: 5 }.build();
        let seq = score_sequential(&p);
        let mig = score_mighty(&p, RouterConfig::default());
        assert_eq!(seq.total, 6);
        assert_eq!(mig.total, 6);
        assert!(mig.completed >= seq.completed, "modification never hurts completion here");
    }

    #[test]
    fn cell_format() {
        let s = BoxScore { completed: 3, total: 4, wirelength: 10, vias: 2 };
        assert_eq!(s.cell(), "3/4");
        assert!(!s.is_complete());
    }
}
