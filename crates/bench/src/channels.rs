//! Experiment T1 driver: every channel router on every suite channel.

use mighty::{MightyRouter, RouterConfig};
use route_channel::{dogleg, greedy, lea, yacr, ChannelSpec};
use route_verify::verify;

/// What one router achieved on one channel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChannelScore {
    /// Routed legally with this many tracks (plus extension columns for
    /// the greedy router).
    Tracks {
        /// Tracks used.
        tracks: usize,
        /// Columns used beyond the channel (greedy only; 0 otherwise).
        extra_columns: usize,
    },
    /// The router cannot route this channel (vertical cycle or budget).
    Failed,
}

impl ChannelScore {
    /// Compact cell text for the result table.
    pub fn cell(&self) -> String {
        match self {
            ChannelScore::Tracks { tracks, extra_columns: 0 } => tracks.to_string(),
            ChannelScore::Tracks { tracks, extra_columns } => {
                format!("{tracks}(+{extra_columns}c)")
            }
            ChannelScore::Failed => "fail".to_string(),
        }
    }

    /// The track count, if routed.
    pub fn tracks(&self) -> Option<usize> {
        match self {
            ChannelScore::Tracks { tracks, .. } => Some(*tracks),
            ChannelScore::Failed => None,
        }
    }
}

/// One row of the T1 table: all five routers on one channel.
#[derive(Debug, Clone)]
pub struct ChannelRow {
    /// Instance name.
    pub name: String,
    /// Channel width in columns.
    pub width: usize,
    /// Net count.
    pub nets: usize,
    /// Density lower bound.
    pub density: u32,
    /// Left-edge result.
    pub lea: ChannelScore,
    /// Dogleg result.
    pub dogleg: ChannelScore,
    /// Greedy result.
    pub greedy: ChannelScore,
    /// YACR-style result.
    pub yacr: ChannelScore,
    /// Rip-up/reroute (minimum track search) result.
    pub mighty: ChannelScore,
}

/// Largest number of tracks above density the minimum-track search tries.
pub const MIGHTY_EXTRA_TRACKS: u32 = 8;

/// Evaluates all five routers on `spec`, verifying every successful
/// routing.
///
/// # Panics
///
/// Panics if any router produces an illegal routing — the harness never
/// tabulates unverified results.
pub fn evaluate(name: &str, spec: &ChannelSpec) -> ChannelRow {
    let lea_score = match lea::route(spec) {
        Ok(sol) => {
            let (problem, db) = sol.layout.realize(spec).expect("LEA layout realizes");
            let report = verify(&problem, &db);
            assert!(report.is_clean(), "LEA produced illegal routing on {name}: {report}");
            // Cross-check: the realized geometry must use exactly the
            // claimed number of horizontal tracks.
            let rows = route_verify::rows_used(&db, route_geom::Layer::M1);
            assert!(
                rows <= sol.tracks,
                "LEA claims {} tracks but uses {rows} rows on {name}",
                sol.tracks
            );
            ChannelScore::Tracks { tracks: sol.tracks, extra_columns: 0 }
        }
        Err(_) => ChannelScore::Failed,
    };
    let dogleg_score = match dogleg::route(spec) {
        Ok(sol) => {
            let (problem, db) = sol.layout.realize(spec).expect("dogleg layout realizes");
            let report = verify(&problem, &db);
            assert!(report.is_clean(), "dogleg produced illegal routing on {name}: {report}");
            ChannelScore::Tracks { tracks: sol.tracks, extra_columns: 0 }
        }
        Err(_) => ChannelScore::Failed,
    };
    let greedy_score = match greedy::route(spec) {
        Ok(sol) => {
            let (problem, db) = sol.layout.realize(spec).expect("greedy layout realizes");
            let report = verify(&problem, &db);
            assert!(report.is_clean(), "greedy produced illegal routing on {name}: {report}");
            ChannelScore::Tracks { tracks: sol.tracks, extra_columns: sol.extra_columns }
        }
        Err(_) => ChannelScore::Failed,
    };
    // The track-assignment router gets a generous budget: when it still
    // fails, the failure is structural, not budgetary.
    let yacr_score = match yacr::route(spec, 2 * MIGHTY_EXTRA_TRACKS) {
        Ok(sol) => {
            let report = verify(&sol.problem, &sol.db);
            assert!(report.is_clean(), "yacr produced illegal routing on {name}: {report}");
            ChannelScore::Tracks { tracks: sol.tracks, extra_columns: 0 }
        }
        Err(_) => ChannelScore::Failed,
    };
    let mighty_score = match mighty_min_tracks(spec, MIGHTY_EXTRA_TRACKS) {
        Some(tracks) => ChannelScore::Tracks { tracks, extra_columns: 0 },
        None => ChannelScore::Failed,
    };
    ChannelRow {
        name: name.to_string(),
        width: spec.width(),
        nets: spec.net_ids().len(),
        density: spec.density(),
        lea: lea_score,
        dogleg: dogleg_score,
        greedy: greedy_score,
        yacr: yacr_score,
        mighty: mighty_score,
    }
}

/// The smallest track count at which the rip-up/reroute router completes
/// `spec` (searching density..=density+`max_extra`), with verification.
pub fn mighty_min_tracks(spec: &ChannelSpec, max_extra: u32) -> Option<usize> {
    let density = spec.density().max(1);
    let router = MightyRouter::new(RouterConfig::default());
    for extra in 0..=max_extra {
        let tracks = (density + extra) as usize;
        let problem = spec.to_problem(tracks);
        let outcome = router.route(&problem);
        if outcome.is_complete() {
            let report = verify(&problem, outcome.db());
            assert!(
                report.is_clean(),
                "rip-up/reroute produced illegal routing at {tracks} tracks: {report}"
            );
            return Some(tracks);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluate_small_channel() {
        let spec = ChannelSpec::new(vec![1, 0, 2, 0], vec![0, 1, 0, 2]).unwrap();
        let row = evaluate("tiny", &spec);
        assert_eq!(row.density, 1); // the two spans do not overlap
        for score in [&row.lea, &row.dogleg, &row.greedy, &row.yacr, &row.mighty] {
            let tracks = score.tracks().expect("trivial channel routes everywhere");
            assert!(tracks >= row.density as usize);
        }
    }

    #[test]
    fn cyclic_channel_separates_routers() {
        let spec = ChannelSpec::new(vec![1, 2, 0], vec![2, 1, 0]).unwrap();
        let row = evaluate("cycle", &spec);
        assert_eq!(row.lea, ChannelScore::Failed);
        assert_eq!(row.dogleg, ChannelScore::Failed);
        assert!(row.greedy.tracks().is_some(), "greedy handles cycles");
        assert!(row.mighty.tracks().is_some(), "rip-up/reroute handles cycles");
    }

    #[test]
    fn score_cells() {
        assert_eq!(ChannelScore::Tracks { tracks: 5, extra_columns: 0 }.cell(), "5");
        assert_eq!(ChannelScore::Tracks { tracks: 5, extra_columns: 2 }.cell(), "5(+2c)");
        assert_eq!(ChannelScore::Failed.cell(), "fail");
    }
}
