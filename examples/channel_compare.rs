//! Compare all five channel routers on one channel — the scenario the
//! paper's evaluation is built around.
//!
//! Reads a channel from a file in the text format of
//! [`vlsi_route::benchdata::format`] when a path is given, otherwise uses
//! a built-in example with a vertical constraint cycle that separates
//! the router generations:
//!
//! ```text
//! cargo run --example channel_compare [channel.txt]
//! ```

use std::process::ExitCode;

use vlsi_route::benchdata::format::parse_channel;
use vlsi_route::channel::{dogleg, greedy, lea, yacr, ChannelSpec};
use vlsi_route::mighty::{MightyRouter, RouterConfig};
use vlsi_route::verify::verify;

fn main() -> ExitCode {
    let spec = match std::env::args().nth(1) {
        Some(path) => {
            let text = match std::fs::read_to_string(&path) {
                Ok(text) => text,
                Err(e) => {
                    eprintln!("cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match parse_channel(&text) {
                Ok(spec) => spec,
                Err(e) => {
                    eprintln!("cannot parse {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => {
            ChannelSpec::new(vec![1, 2, 3, 0, 4, 2, 0, 5, 4, 0], vec![2, 1, 0, 3, 2, 5, 4, 0, 5, 4])
                .expect("built-in example is valid")
        }
    };

    println!("{spec}");
    println!("density lower bound: {} tracks\n", spec.density());

    match lea::route(&spec) {
        Ok(sol) => println!("left-edge:   {} tracks", sol.tracks),
        Err(e) => println!("left-edge:   cannot route ({e})"),
    }
    match dogleg::route(&spec) {
        Ok(sol) => println!("dogleg:      {} tracks", sol.tracks),
        Err(e) => println!("dogleg:      cannot route ({e})"),
    }
    match greedy::route(&spec) {
        Ok(sol) => {
            println!("greedy:      {} tracks, {} extension columns", sol.tracks, sol.extra_columns)
        }
        Err(e) => println!("greedy:      cannot route ({e})"),
    }
    match yacr::route(&spec, 8) {
        Ok(sol) => println!("yacr-style:  {} tracks", sol.tracks),
        Err(e) => println!("yacr-style:  cannot route ({e})"),
    }

    // The rip-up/reroute router treats the channel as a general region
    // and searches for the smallest track count.
    let router = MightyRouter::new(RouterConfig::default());
    let density = spec.density().max(1);
    let mut routed = None;
    for extra in 0..=8 {
        let tracks = (density + extra) as usize;
        let problem = spec.to_problem(tracks);
        let outcome = router.route(&problem);
        if outcome.is_complete() {
            let report = verify(&problem, outcome.db());
            assert!(report.is_clean(), "{report}");
            routed = Some(tracks);
            break;
        }
    }
    match routed {
        Some(tracks) => println!("rip-up:      {tracks} tracks"),
        None => println!("rip-up:      cannot route within density+8"),
    }
    ExitCode::SUCCESS
}
