//! Quickstart: build a small switchbox, route it with the rip-up/reroute
//! router, verify the result, and print the layout.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use vlsi_route::mighty::{MightyRouter, RouterConfig};
use vlsi_route::model::{render_layers, PinSide, ProblemBuilder};
use vlsi_route::verify::verify;

fn main() {
    // A 10x8 switchbox with four nets crossing each other.
    let mut builder = ProblemBuilder::switchbox(10, 8);
    builder.net("alpha").pin_side(PinSide::Left, 2).pin_side(PinSide::Right, 5);
    builder.net("beta").pin_side(PinSide::Left, 5).pin_side(PinSide::Right, 2);
    builder.net("gamma").pin_side(PinSide::Bottom, 3).pin_side(PinSide::Top, 6);
    builder.net("delta").pin_side(PinSide::Bottom, 6).pin_side(PinSide::Top, 3);
    let problem = builder.build().expect("valid problem");

    let router = MightyRouter::new(RouterConfig::default());
    let outcome = router.route(&problem);

    println!("complete: {}", outcome.is_complete());
    println!("stats:    {}", outcome.stats());
    println!("wiring:   {}", outcome.db().stats());

    let report = verify(&problem, outcome.db());
    println!("verify:   {report}");
    assert!(report.is_clean(), "quickstart must produce a legal routing");

    println!("\n{}", render_layers(outcome.db()));
}
