//! Partially routed areas: the engineering-change scenario the general
//! detailed router exists for.
//!
//! A macro-cell region is routed, then a late netlist change adds two
//! nets whose pins are already walled in by existing wiring. The
//! incremental router repairs the situation by pushing and ripping
//! existing wiring instead of starting over.
//!
//! ```text
//! cargo run --example floorplan_repair
//! ```

use vlsi_route::geom::{Point, Rect};
use vlsi_route::maze::{sequential, CostModel};
use vlsi_route::mighty::{MightyRouter, RouterConfig};
use vlsi_route::model::{render_layers, PinSide, ProblemBuilder, RouteDb};
use vlsi_route::verify::verify;

fn main() {
    // A 14x10 region with two macro obstacles, as around placed blocks.
    let mut builder = ProblemBuilder::switchbox(14, 10);
    builder.obstacle_rect(Rect::with_size(Point::new(3, 3), 3, 3));
    builder.obstacle_rect(Rect::with_size(Point::new(9, 5), 3, 2));
    // The original netlist.
    builder.net("bus0").pin_side(PinSide::Left, 1).pin_side(PinSide::Right, 1);
    builder.net("bus1").pin_side(PinSide::Left, 2).pin_side(PinSide::Right, 2);
    builder.net("clk").pin_side(PinSide::Bottom, 7).pin_side(PinSide::Top, 7);
    // The late additions (declared up front; routed later).
    builder.net("fix0").pin_side(PinSide::Left, 8).pin_side(PinSide::Right, 8);
    builder.net("fix1").pin_side(PinSide::Bottom, 2).pin_side(PinSide::Top, 11);
    let problem = builder.build().expect("valid problem");

    // Phase 1: route the original nets with the plain sequential router,
    // leaving the late nets untouched.
    let mut db = RouteDb::new(&problem);
    let original = ["bus0", "bus1", "clk"];
    for name in original {
        let net = problem.net_by_name(name).expect("declared above").id;
        sequential::connect_net(&mut db, net, CostModel::default())
            .unwrap_or_else(|_| panic!("original net {name} routes in the empty region"));
    }
    println!("after initial routing:\n{}", render_layers(&db));

    // Phase 2: the change order arrives. Route the remaining nets
    // incrementally; existing wiring may be moved.
    let router = MightyRouter::new(RouterConfig::default());
    let outcome =
        router.try_route_incremental(&problem, db).expect("database built for this problem");
    println!("repair complete: {}", outcome.is_complete());
    println!("work: {}", outcome.stats());

    let report = verify(&problem, outcome.db());
    assert!(report.is_clean(), "repair must produce a legal routing: {report}");
    println!("\nafter repair:\n{}", render_layers(outcome.db()));
}
