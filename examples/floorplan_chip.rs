//! Chip-scale hierarchical routing: a 96x96 floorplan with macro blocks,
//! planned over 16-cell tiles and detail-routed per tile.
//!
//! ```text
//! cargo run --release --example floorplan_chip [out.svg]
//! ```

use std::time::Instant;

use vlsi_route::geom::{Point, Rect};
use vlsi_route::global::{route_hierarchical, GlobalConfig};
use vlsi_route::model::{render_svg, PinSide, ProblemBuilder};
use vlsi_route::verify::verify;

fn main() {
    let mut builder = ProblemBuilder::switchbox(96, 96);
    // Four macro blocks.
    for (x, y, w, h) in [(12, 12, 24, 20), (58, 10, 26, 24), (14, 60, 20, 22), (56, 56, 28, 26)] {
        builder.obstacle_rect(Rect::with_size(Point::new(x, y), w, h));
    }
    // A bus crossing the die plus scattered point-to-point nets.
    for i in 0..8 {
        builder
            .net(format!("bus{i}"))
            .pin_side(PinSide::Left, 40 + i)
            .pin_side(PinSide::Right, 40 + i);
    }
    for i in 0..10 {
        builder
            .net(format!("io{i}"))
            .pin_side(PinSide::Bottom, 8 + 8 * i)
            .pin_side(PinSide::Top, 88 - 8 * i);
    }
    let problem = builder.build().expect("valid floorplan");

    let start = Instant::now();
    let outcome = route_hierarchical(&problem, &GlobalConfig::default());
    let ms = start.elapsed().as_secs_f64() * 1e3;

    println!("complete: {} in {ms:.1} ms", outcome.is_complete());
    println!("stats:    {:?}", outcome.stats());
    let report = verify(&problem, outcome.db());
    println!("verify:   {report}");
    assert!(report.is_clean(), "floorplan must route cleanly");

    if let Some(path) = std::env::args().nth(1) {
        std::fs::write(&path, render_svg(outcome.db())).expect("svg written");
        println!("svg written to {path}");
    }
}
