//! Three-layer (HVH) routing: the same channel routed with two and
//! three layers, showing the track savings the extra horizontal layer
//! buys.
//!
//! ```text
//! cargo run --release --example three_layer
//! ```

use vlsi_route::channel::ChannelSpec;
use vlsi_route::mighty::{MightyRouter, RouterConfig};
use vlsi_route::model::render_layers;
use vlsi_route::verify::verify;

fn main() {
    let spec =
        ChannelSpec::new(vec![1, 2, 3, 4, 5, 0, 0, 0, 0, 0], vec![0, 0, 0, 0, 0, 1, 2, 3, 4, 5])
            .expect("valid channel");
    println!("{spec}\n");

    let router = MightyRouter::new(RouterConfig::default());
    for layers in [2u8, 3] {
        let mut routed = None;
        for tracks in 1..=spec.density() as usize + 4 {
            let problem = spec.to_problem_with_layers(tracks, layers);
            let outcome = router.route(&problem);
            if outcome.is_complete() {
                let report = verify(&problem, outcome.db());
                assert!(report.is_clean(), "{report}");
                routed = Some((tracks, outcome));
                break;
            }
        }
        let (tracks, outcome) = routed.expect("channel routes within the budget");
        println!("=== {layers} layers: {tracks} tracks ===");
        println!("{}", render_layers(outcome.db()));
    }
}
