//! Routing an irregular (L-shaped) region — "the boundaries can be
//! described by any rectilinear chains" — and writing the result as SVG.
//!
//! ```text
//! cargo run --example l_region [out.svg]
//! ```

use vlsi_route::geom::{Layer, Point, Rect, Region};
use vlsi_route::mighty::{MightyRouter, RouterConfig};
use vlsi_route::model::{render_layers, render_svg, ProblemBuilder};
use vlsi_route::verify::verify;

fn main() {
    // An L-shaped macro-cell channel: wide base, tall arm.
    let region = Region::from_rects([
        Rect::with_size(Point::new(0, 0), 16, 5),
        Rect::with_size(Point::new(0, 0), 5, 16),
    ]);
    let mut builder = ProblemBuilder::region(region);
    builder.obstacle_rect(Rect::with_size(Point::new(7, 1), 2, 2));
    builder.net("turn0").pin_at(Point::new(1, 15), Layer::M2).pin_at(Point::new(15, 1), Layer::M1);
    builder.net("turn1").pin_at(Point::new(3, 15), Layer::M2).pin_at(Point::new(15, 3), Layer::M1);
    builder.net("arm").pin_at(Point::new(0, 8), Layer::M1).pin_at(Point::new(4, 12), Layer::M1);
    builder.net("base").pin_at(Point::new(6, 0), Layer::M2).pin_at(Point::new(12, 4), Layer::M2);
    let problem = builder.build().expect("valid region problem");

    let outcome = MightyRouter::new(RouterConfig::default()).route(&problem);
    println!("complete: {} ({})", outcome.is_complete(), outcome.stats());

    let report = verify(&problem, outcome.db());
    assert!(report.is_clean(), "routing must be legal: {report}");
    println!("verify:   {report}\n");
    println!("{}", render_layers(outcome.db()));

    if let Some(path) = std::env::args().nth(1) {
        std::fs::write(&path, render_svg(outcome.db())).expect("svg written");
        println!("svg written to {path}");
    }
}
