//! Tour of the Burstein-class difficult switchbox: route it at nominal
//! width and one column narrower, with and without modification, and
//! render the final layout — the headline experiment of the paper.
//!
//! ```text
//! cargo run --release --example switchbox_tour
//! ```

use vlsi_route::benchdata::{burstein_class_width, BURSTEIN_WIDTH};
use vlsi_route::maze::{sequential, CostModel};
use vlsi_route::mighty::{MightyRouter, RouterConfig};
use vlsi_route::model::render_layers;
use vlsi_route::verify::verify;

fn main() {
    for width in [BURSTEIN_WIDTH, BURSTEIN_WIDTH - 1] {
        let problem = burstein_class_width(width);
        println!(
            "=== Burstein-class switchbox, {}x{} ({} nets) ===",
            problem.width(),
            problem.height(),
            problem.nets().len()
        );

        let seq = sequential::route_all(&problem, CostModel::default());
        println!(
            "sequential maze:  {}/{} nets",
            problem.nets().len() - seq.failed.len(),
            problem.nets().len()
        );

        let outcome = MightyRouter::new(RouterConfig::default()).route(&problem);
        let report = verify(&problem, outcome.db());
        assert!(report.is_clean() || report.is_legal_but_incomplete(), "illegal routing: {report}");
        println!(
            "rip-up/reroute:   {}/{} nets   ({})",
            problem.nets().len() - outcome.failed().len(),
            problem.nets().len(),
            outcome.stats()
        );
        if width == BURSTEIN_WIDTH - 1 && outcome.is_complete() {
            println!("\nrouted with one less column than the nominal data:\n");
            println!("{}", render_layers(outcome.db()));
        }
        println!();
    }
}
