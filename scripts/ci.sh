#!/usr/bin/env bash
# Offline CI gate: build, test, format and lint the whole workspace.
#
#   scripts/ci.sh            # everything
#   scripts/ci.sh --quick    # skip the release build
#
# The workspace has no external dependencies, so every step runs with
# the network off (--offline keeps cargo from even trying).

set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=0
[[ "${1:-}" == "--quick" ]] && QUICK=1

run() {
  echo "==> $*"
  "$@"
}

run cargo build --workspace --offline
run cargo test --workspace --offline --quiet
if command -v rustfmt >/dev/null 2>&1; then
  run cargo fmt --all -- --check
else
  echo "==> rustfmt not installed; skipping format check"
fi
if cargo clippy --version >/dev/null 2>&1; then
  run cargo clippy --workspace --all-targets --offline -- -D warnings
else
  echo "==> clippy not installed; skipping lint"
fi
echo "==> cargo doc --workspace --no-deps (denying rustdoc warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --offline --quiet
if [[ "$QUICK" == 0 ]]; then
  run cargo build --workspace --release --offline
fi

# Bounded smoke fuzz: a fixed seed window through every router and
# every oracle (see crates/fuzz). Deterministic, so a failure here is a
# real regression with a replayable case; the window is sized to stay
# within a few seconds even on one hardware thread.
if [[ "$QUICK" == 0 ]]; then
  run ./target/release/vroute fuzz --seeds 0..200 --shrink
else
  run cargo run --offline --quiet -p route-cli -- fuzz --seeds 0..40 --shrink
fi

echo "ci: all checks passed"
