#!/usr/bin/env bash
# Offline CI gate: build, test, format and lint the whole workspace.
#
#   scripts/ci.sh            # everything
#   scripts/ci.sh --quick    # skip the release build
#
# The workspace has no external dependencies, so every step runs with
# the network off (--offline keeps cargo from even trying).

set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=0
[[ "${1:-}" == "--quick" ]] && QUICK=1

run() {
  echo "==> $*"
  "$@"
}

run cargo build --workspace --offline
run cargo test --workspace --offline --quiet
if command -v rustfmt >/dev/null 2>&1; then
  run cargo fmt --all -- --check
else
  echo "==> rustfmt not installed; skipping format check"
fi
if cargo clippy --version >/dev/null 2>&1; then
  run cargo clippy --workspace --all-targets --offline -- -D warnings
else
  echo "==> clippy not installed; skipping lint"
fi
echo "==> cargo doc --workspace --no-deps (denying rustdoc warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --offline --quiet
if [[ "$QUICK" == 0 ]]; then
  run cargo build --workspace --release --offline
fi

# Static analysis over the corpus: every case must analyze with the
# verdict its name encodes — `*infeasible*` cases carry a certificate
# (non-zero exit), everything else is diagnostic-free. This pins the
# analyzer's soundness on real instances, not just unit fixtures.
if [[ "$QUICK" == 0 ]]; then
  VROUTE=./target/release/vroute
else
  run cargo build --offline --quiet -p route-cli
  VROUTE=./target/debug/vroute
fi
for case in tests/corpus/*.case; do
  if [[ "$case" == *infeasible* ]]; then
    echo "==> $VROUTE analyze $case (expecting a certificate)"
    if "$VROUTE" analyze "$case" > /dev/null; then
      echo "ci: $case must carry an infeasibility certificate" >&2
      exit 1
    fi
  else
    echo "==> $VROUTE analyze $case"
    "$VROUTE" analyze "$case" > /dev/null
  fi
done

# Chip-scale corpus gate: the committed chip-*.sb cases carry golden
# F004/F006 certificates (tile-cut saturation, walled tile regions),
# so `analyze --chip` must keep convicting them — a zero exit means
# the hierarchical analyzer lost a certificate it used to prove.
for case in tests/corpus/chip-*.sb; do
  echo "==> $VROUTE analyze $case --chip --tile 8 (expecting a certificate)"
  if "$VROUTE" analyze "$case" --chip --tile 8 > /dev/null; then
    echo "ci: $case must carry a chip-scale infeasibility certificate" >&2
    exit 1
  fi
done

# Concurrency-sanitizer lane: mighty-core hosts the multithreaded
# engine and service, so its tests get a ThreadSanitizer pass when the
# nightly toolchain can support one. TSan needs an instrumented std
# (-Zbuild-std, hence rust-src) — against an uninstrumented std every
# wait inside the standard library surfaces as a false race — so the
# lane is gated on the whole toolchain being present and skips cleanly
# elsewhere.
if command -v rustup >/dev/null 2>&1 \
   && rustup toolchain list 2>/dev/null | grep -q '^nightly' \
   && rustup component list --toolchain nightly 2>/dev/null \
      | grep -q 'rust-src (installed)'; then
  echo "==> ThreadSanitizer lane (mighty-core engine/service tests)"
  RUSTFLAGS="-Zsanitizer=thread" \
    cargo +nightly test -p mighty-core --offline --quiet \
    -Zbuild-std --target x86_64-unknown-linux-gnu
else
  echo "==> nightly rust-src not installed; skipping ThreadSanitizer lane"
fi

# Miri smoke: the grid/occupancy core of route-model carries the
# bit-packed occupancy planes the routers trust blindly; a bounded
# miri pass over its unit tests catches undefined behaviour that
# ordinary tests cannot.
if command -v rustup >/dev/null 2>&1 \
   && rustup component list --toolchain nightly 2>/dev/null \
      | grep -q 'miri.* (installed)'; then
  echo "==> miri smoke (route-model grid/occupancy unit tests)"
  cargo +nightly miri test -p route-model --offline -- grid occupancy
else
  echo "==> nightly miri not installed; skipping miri smoke"
fi

# Supervised recovery smoke: SIGKILL a journaled batch mid-run, resume
# it, and require the resumed JSON report to be byte-identical to an
# uninterrupted run's. This exercises the crash path for real — a
# process death, not a simulated truncation — so the journal's torn-
# line handling and replay semantics are proven end to end.
SMOKE=$(mktemp -d)
trap 'rm -rf "$SMOKE"' EXIT
for seed in 0 1 2 3 4 5 6 7; do
  "$VROUTE" gen switchbox --width 16 --height 16 --nets 8 --seed "$seed" \
    > "$SMOKE/s$seed.sb"
done
FILES=("$SMOKE"/s*.sb)
echo "==> $VROUTE batch (journaled reference run)"
"$VROUTE" batch "${FILES[@]}" --retries 1 --jobs 2 \
  --journal "$SMOKE/ref" --json "$SMOKE/ref.json" > /dev/null
echo "==> $VROUTE batch (killed mid-run)"
# A tiny per-attempt delay keeps the batch alive long enough to die.
VROUTE_FAULT=delay-40 timeout -s KILL 0.15 \
  "$VROUTE" batch "${FILES[@]}" --retries 1 --jobs 2 \
  --journal "$SMOKE/kill" > /dev/null || true
echo "==> $VROUTE batch --resume (after the kill)"
"$VROUTE" batch "${FILES[@]}" --retries 1 --jobs 2 \
  --journal "$SMOKE/kill" --resume --json "$SMOKE/resumed.json" > /dev/null
run diff "$SMOKE/ref.json" "$SMOKE/resumed.json"

# Serve smoke: start the daemon on a unix socket, drive requests
# through the bundled client, and require complete responses plus a
# clean shutdown. Then the crash path: kill the daemon mid-request
# (an injected per-job delay widens the window), restart it with
# --journal --resume, and require the journaled request to replay —
# the resumed WAL must hold no pending work afterwards.
SOCK="$SMOKE/serve.sock"
echo "==> $VROUTE serve + client smoke"
"$VROUTE" serve --socket "$SOCK" --workers 2 > "$SMOKE/serve.out" &
SERVE_PID=$!
for _ in $(seq 1 100); do [[ -S "$SOCK" ]] && break; sleep 0.05; done
[[ -S "$SOCK" ]] || { echo "ci: serve never bound $SOCK" >&2; exit 1; }
"$VROUTE" client --socket "$SOCK" "${FILES[@]}" --shutdown > "$SMOKE/client.out"
wait "$SERVE_PID"
COMPLETE=$(grep -c ": complete" "$SMOKE/client.out")
if [[ "$COMPLETE" != "${#FILES[@]}" ]]; then
  echo "ci: expected ${#FILES[@]} complete serve responses, got $COMPLETE" >&2
  cat "$SMOKE/client.out" >&2
  exit 1
fi
grep -q "daemon stopping" "$SMOKE/client.out" || {
  echo "ci: client never saw the shutdown acknowledgement" >&2; exit 1; }

echo "==> $VROUTE serve (killed mid-request)"
rm -f "$SOCK"; mkdir -p "$SMOKE/swal"
VROUTE_SERVE_FAULT=delay-800 \
  "$VROUTE" serve --socket "$SOCK" --workers 1 --journal "$SMOKE/swal" \
  > /dev/null 2>&1 &
SERVE_PID=$!
for _ in $(seq 1 100); do [[ -S "$SOCK" ]] && break; sleep 0.05; done
# Fire one request, wait for its WAL record, then kill the daemon
# while the injected 800ms fault delay still holds the job.
"$VROUTE" client --socket "$SOCK" "${FILES[0]}" > /dev/null 2>&1 &
CLIENT_PID=$!
for _ in $(seq 1 100); do
  grep -q '"ev":"req"' "$SMOKE/swal/serve.ldj" 2>/dev/null && break
  sleep 0.05
done
kill -KILL "$SERVE_PID" 2>/dev/null || true
wait "$SERVE_PID" 2>/dev/null || true
wait "$CLIENT_PID" 2>/dev/null || true
grep -q '"ev":"req"' "$SMOKE/swal/serve.ldj" || {
  echo "ci: the killed daemon never journaled the request" >&2; exit 1; }
if grep -q '"ev":"done"' "$SMOKE/swal/serve.ldj"; then
  echo "ci: the kill window missed — request finished before SIGKILL" >&2
  exit 1
fi
echo "==> $VROUTE serve --resume (after the kill)"
rm -f "$SOCK"
"$VROUTE" serve --socket "$SOCK" --workers 1 --journal "$SMOKE/swal" --resume \
  > "$SMOKE/resume.out" &
SERVE_PID=$!
for _ in $(seq 1 100); do [[ -S "$SOCK" ]] && break; sleep 0.05; done
"$VROUTE" client --socket "$SOCK" --shutdown > /dev/null
wait "$SERVE_PID"
grep -q "replaying 1 journaled request(s)" "$SMOKE/resume.out" || {
  echo "ci: the resumed daemon did not replay the pending request" >&2
  cat "$SMOKE/resume.out" >&2
  exit 1
}
DONE=$(grep -c '"ev":"done"' "$SMOKE/swal/serve.ldj")
if [[ "$DONE" != 1 ]]; then
  echo "ci: replay did not settle the journal (done records: $DONE)" >&2
  exit 1
fi

# Bounded smoke fuzz: a fixed seed window through every router and
# every oracle (see crates/fuzz) — including the infeasibility-
# soundness oracle, which fails any run where a router completes an
# instance the analyzer certified as unroutable. Deterministic, so a
# failure here is a real regression with a replayable case. The full
# window runs to 800 so it covers the chip-salvage oracle over the
# seed range that produced the stitch-727 finding (now a corpus case).
if [[ "$QUICK" == 0 ]]; then
  run "$VROUTE" fuzz --seeds 0..800 --shrink
else
  run "$VROUTE" fuzz --seeds 0..40 --shrink
fi

# Chip-flow determinism gate: the hierarchical flow (plan → parallel
# per-tile detail → seam stitch → fallback) must produce a byte-
# identical database regardless of the worker count, and the stitched
# result must come out legal and complete. The checksum comparison is
# the real assertion — any worker-count-dependent merge order, seam
# repair order, or fallback order changes it.
echo "==> $VROUTE chip determinism gate (jobs 1 vs jobs 4)"
"$VROUTE" chip --width 40 --height 40 --nets 70 --macros 2 --seed 3 \
  --tile 10 --jobs 1 --json "$SMOKE/chip1.json" > /dev/null
"$VROUTE" chip --width 40 --height 40 --nets 70 --macros 2 --seed 3 \
  --tile 10 --jobs 4 --json "$SMOKE/chip4.json" > /dev/null
# Everything but the wall-clock and the worker count itself must be
# byte-identical: checksum, per-stage stats, failed set, legality.
run diff <(grep -v '"ms"\|"jobs"' "$SMOKE/chip1.json") \
         <(grep -v '"ms"\|"jobs"' "$SMOKE/chip4.json")
grep -q '"legal": true' "$SMOKE/chip1.json" || {
  echo "ci: the chip gate instance routed illegally" >&2; exit 1; }
grep -q '"complete": true' "$SMOKE/chip1.json" || {
  echo "ci: the chip gate instance did not route completely" >&2; exit 1; }

# Supervised chip crash smoke: SIGKILL a journaled chip run mid-tile
# (an injected per-tile delay widens the window), resume it, and
# require the resumed JSON report to be byte-identical to an
# uninterrupted run's. Supervised chip reports carry no wall-clock
# field, so a plain diff is the whole assertion.
echo "==> $VROUTE chip (journaled reference run)"
"$VROUTE" chip --width 40 --height 40 --nets 70 --macros 2 --seed 3 \
  --tile 10 --jobs 2 --retries 1 --journal "$SMOKE/chipref" \
  --json "$SMOKE/chipref.json" > /dev/null
echo "==> $VROUTE chip (killed mid-run)"
VROUTE_FAULT=delay-60 timeout -s KILL 0.35 \
  "$VROUTE" chip --width 40 --height 40 --nets 70 --macros 2 --seed 3 \
  --tile 10 --jobs 2 --retries 1 --journal "$SMOKE/chipkill" \
  > /dev/null || true
echo "==> $VROUTE chip --resume (after the kill)"
"$VROUTE" chip --width 40 --height 40 --nets 70 --macros 2 --seed 3 \
  --tile 10 --jobs 2 --retries 1 --journal "$SMOKE/chipkill" --resume \
  --json "$SMOKE/chipresumed.json" > "$SMOKE/chipresume.out"
run diff "$SMOKE/chipref.json" "$SMOKE/chipresumed.json"

# Fault-injected chip smoke: panic one tile's first attempt and require
# the supervised flow to retry it to a complete, legal routing — the
# recovery must be visible in the report, not silent.
echo "==> $VROUTE chip (VROUTE_FAULT=panic@tile:3)"
VROUTE_FAULT=panic@tile:3 \
  "$VROUTE" chip --width 40 --height 40 --nets 70 --macros 2 --seed 3 \
  --tile 10 --jobs 2 --retries 1 --json "$SMOKE/chipfault.json" > /dev/null
grep -q '"complete": true' "$SMOKE/chipfault.json" || {
  echo "ci: the fault-injected chip did not complete" >&2; exit 1; }
grep -q '"legal": true' "$SMOKE/chipfault.json" || {
  echo "ci: the fault-injected chip routed illegally" >&2; exit 1; }
RETRIED=$(grep -o '"tiles_retried": [0-9]*' "$SMOKE/chipfault.json" | grep -o '[0-9]*$')
if [[ -z "$RETRIED" || "$RETRIED" -lt 1 ]]; then
  echo "ci: the injected tile fault was not recovered by a retry" >&2
  cat "$SMOKE/chipfault.json" >&2
  exit 1
fi

# Chip-scale benchmark: flat vs hierarchical at 1..N workers. The
# binary asserts jobs-parity checksums and (in full mode) a verifier-
# clean 256-tile, 10k-net routing, then refreshes BENCH_chip.json.
if [[ "$QUICK" == 0 ]]; then
  run cargo run --release --offline --quiet -p route-bench --bin exp_c1_chip
else
  run cargo run --release --offline --quiet -p route-bench --bin exp_c1_chip -- --quick
fi

# Hot-path throughput gate: route the channel suite under every
# frontier/probe mode (bit-identical checksums asserted inside the
# sweep) and fail if the default bucket-queue frontier is slower than
# the binary heap on the rip-up router. Perf ratios are only meaningful
# in release, so both modes build the bench binary optimized; the full
# run also refreshes the BENCH_maze.json artifact.
if [[ "$QUICK" == 0 ]]; then
  run cargo run --release --offline --quiet -p route-bench --bin exp_m1_hotpath -- --gate
else
  run cargo run --release --offline --quiet -p route-bench --bin exp_m1_hotpath -- --quick --gate
fi

echo "ci: all checks passed"
